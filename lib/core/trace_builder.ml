module Layout = Cfg.Layout

(* Trace (re)construction in response to a profiler signal (paper §4.2).

   1. Entry points: backtrack from the signalled node along strongly
      correlated incoming edges — predecessors whose maximally correlated
      successor is the node being left — collecting the set of transitions
      from which execution is likely to reach the modified branch.

   2. From each entry point, follow the path of maximum likelihood (the
      cached best successor of each node) while nodes remain followable
      (unique or strongly correlated), stopping at a weakly correlated or
      newly created branch, at a node already on the path (a loop), or at
      the walk cap.

   3. If the path closed a loop, the loop is processed first, as its own
      segment: because traces are entered by *transition*, a loop-body
      trace whose last block is the back-edge source chains back into
      itself, which plays the role of the paper's single unrolling.

   4. Each segment is cut greedily into traces whose cumulative completion
      probability (product of the correlations along the trace) stays at or
      above the completion threshold, then installed into the cache
      (hash-consed, so identical reconstructions are retrieved, not
      rebuilt). *)

type outcome = {
  new_traces : int; (* traces actually constructed *)
  reused_traces : int; (* reconstructions satisfied by hash-consing *)
  entry_points : int;
  pruned_guards : int;
      (* guard positions proved implied across the newly installed
         traces (Config.prune_guards) *)
}

let no_outcome =
  { new_traces = 0; reused_traces = 0; entry_points = 0; pruned_guards = 0 }

(* A predecessor [p] leads into [n] strongly if p's best successor edge
   targets n and p is followable. *)
let strong_preds (n : Bcg.node) : Bcg.node list =
  List.filter
    (fun (p : Bcg.node) ->
      State.is_followable p.Bcg.state
      &&
      match p.Bcg.best with
      | Some e -> e.Bcg.e_target == n
      | None -> false)
    n.Bcg.preds

(* Step 1: entry points reachable backwards along strong edges. *)
let find_entry_points (config : Config.t) (s : Bcg.node) : Bcg.node list =
  let visited : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  let key (n : Bcg.node) = (n.Bcg.n_x, n.Bcg.n_y) in
  let roots = ref [] in
  let rec back n depth =
    if Hashtbl.mem visited (key n) then ()
    else begin
      Hashtbl.replace visited (key n) ();
      let preds = strong_preds n in
      if preds = [] || depth >= Config.max_backtrack config then
        roots := n :: !roots
      else
        List.iter
          (fun p ->
            if Hashtbl.mem visited (key p) then
              (* cycle during backtracking: n is as far back as we get *)
              roots := n :: !roots
            else back p (depth + 1))
          preds
    end
  in
  back s 0;
  let roots = List.filter (fun (n : Bcg.node) -> State.is_followable n.Bcg.state) !roots in
  match roots with
  | [] -> if State.is_followable s.Bcg.state then [ s ] else []
  | rs -> rs

type walk = {
  path : Bcg.node array; (* transitions n_0 .. n_m *)
  corrs : float array; (* corrs.(i) links path.(i) to path.(i+1) *)
  cycle_start : int option; (* index the walk looped back to, if any *)
}

(* Step 2: maximum-likelihood walk. *)
let walk_from (config : Config.t) (root : Bcg.node) : walk =
  let path = ref [ root ] in
  let corrs = ref [] in
  let index : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let key (n : Bcg.node) = (n.Bcg.n_x, n.Bcg.n_y) in
  Hashtbl.replace index (key root) 0;
  let len = ref 1 in
  let cycle = ref None in
  let cur = ref root in
  let stop = ref false in
  while not !stop do
    let n = !cur in
    if not (State.is_followable n.Bcg.state) then stop := true
    else
      match n.Bcg.best with
      | None -> stop := true
      | Some e ->
          let c = Bcg.correlation n e in
          if c < Config.threshold config then stop := true
          else begin
            let target = e.Bcg.e_target in
            match Hashtbl.find_opt index (key target) with
            | Some i ->
                (* closing a loop: remember where, keep the closing corr
                   so the loop segment's own chaining probability is known *)
                cycle := Some i;
                corrs := c :: !corrs;
                stop := true
            | None ->
                if !len >= Config.max_walk config then stop := true
                else begin
                  corrs := c :: !corrs;
                  path := target :: !path;
                  Hashtbl.replace index (key target) !len;
                  incr len;
                  cur := target
                end
          end
  done;
  let path = Array.of_list (List.rev !path) in
  let corrs = Array.of_list (List.rev !corrs) in
  { path; corrs; cycle_start = !cycle }

(* Install one candidate and do the per-install bookkeeping the cutter
   and OSR promotion share: hash-cons accounting, one-time
   guard-implication pruning, the construction event.  Returns
   ((new, reused, pruned), installed trace). *)
let install_candidate (config : Config.t) (cache : Trace_cache.t) ~events
    ~first ~blocks ~prob : (int * int * int) * Trace.t option =
  let before = Trace_cache.n_constructed cache in
  (* fallible: a quarantined entry or an injected installation failure
     drops the candidate — the cache records why *)
  match Trace_cache.try_install cache ~first ~blocks ~prob with
  | None -> ((0, 0, 0), None)
  | Some tr ->
      let is_new = Trace_cache.n_constructed cache > before in
      let pruned = ref 0 in
      (* guard-implication pruning runs once, at installation: the
         verdicts are a property of the trace body alone, so a hash-cons
         reuse keeps the first derivation *)
      if is_new && Config.prune_guards config then begin
        let n = Trace_prover.prune (Trace_cache.layout cache) tr in
        if n > 0 then begin
          pruned := n;
          if Events.enabled events then
            Events.emit events
              (Events.Guards_pruned
                 {
                   trace_id = tr.Trace.id;
                   pruned = n;
                   guards = Trace.n_blocks tr;
                 })
        end
      end;
      if Events.enabled events then
        Events.emit events
          (Events.Trace_constructed
             {
               trace_id = tr.Trace.id;
               first;
               n_blocks = Trace.n_blocks tr;
               n_instrs = tr.Trace.total_instrs;
               prob;
               reused = not is_new;
             });
      (((if is_new then 1 else 0), (if is_new then 0 else 1), !pruned), Some tr)

(* Step 4: greedy probability cut of one segment of transitions
   [lo .. hi] (inclusive).  A trace covering transitions i..j consists of
   blocks [n_i.n_y .. n_j.n_y] with entry context n_i.n_x and completion
   probability prod(corrs.(i) .. corrs.(j-1)). *)
let cut_segment (config : Config.t) (cache : Trace_cache.t) ~events
    (w : walk) ~lo ~hi : int * int * int =
  let new_traces = ref 0 in
  let reused = ref 0 in
  let pruned_guards = ref 0 in
  let i = ref lo in
  while !i <= hi do
    let j = ref !i in
    let p = ref 1.0 in
    let continue_ = ref true in
    while !continue_ do
      let next = !j + 1 in
      if next > hi then continue_ := false
      else if next - !i + 1 > Config.max_trace_blocks config then
        continue_ := false
      else begin
        (* corrs.(!j) links transition !j to transition next; it is present
           for every !j < Array.length w.corrs *)
        let c = if !j < Array.length w.corrs then w.corrs.(!j) else 0.0 in
        if !p *. c >= Config.threshold config then begin
          p := !p *. c;
          j := next
        end
        else continue_ := false
      end
    done;
    let n_transitions = !j - !i + 1 in
    if n_transitions >= Config.min_trace_blocks config then begin
      let first = w.path.(!i).Bcg.n_x in
      let blocks =
        Array.init n_transitions (fun k -> w.path.(!i + k).Bcg.n_y)
      in
      let (n, r, p), _ =
        install_candidate config cache ~events ~first ~blocks ~prob:!p
      in
      new_traces := !new_traces + n;
      reused := !reused + r;
      pruned_guards := !pruned_guards + p
    end;
    i := !j + 1
  done;
  (!new_traces, !reused, !pruned_guards)

(* Step 3: a walk that closed a loop gets its loop segment unrolled once
   (paper §4.2): the candidate transition sequence is two copies of the
   loop body, joined by the back edge's correlation.  The probability
   cutter then decides whether the doubled body actually fits under the
   threshold.  Loop traces chain into themselves either way, because their
   last block is the entry transition's context. *)
let unroll_loop (w : walk) ~c ~m : walk =
  let seg = m - c + 1 in
  let path = Array.init (2 * seg) (fun k -> w.path.(c + (k mod seg))) in
  let closing =
    (* walk_from records the back edge's correlation after the last
       transition when it detects the cycle *)
    if Array.length w.corrs > m then w.corrs.(m) else 0.0
  in
  let corrs =
    Array.init
      ((2 * seg) - 1)
      (fun k ->
        if k mod seg = seg - 1 then closing else w.corrs.(c + (k mod seg)))
  in
  { path; corrs; cycle_start = None }

(* Steps 2-4 for one entry point. *)
let build_from (config : Config.t) (cache : Trace_cache.t) ~events ~on_path
    (root : Bcg.node) : int * int * int =
  let w = walk_from config root in
  on_path (Array.length w.path);
  let m = Array.length w.path - 1 in
  if m < 0 then (0, 0, 0)
  else
    match w.cycle_start with
    | Some c when c <= m ->
        (* the loop is processed first, then the prefix leading into it *)
        let lw = unroll_loop w ~c ~m in
        let ln, lr, lp =
          cut_segment config cache ~events lw ~lo:0
            ~hi:(Array.length lw.path - 1)
        in
        let pn, pr, pp =
          if c > 0 then cut_segment config cache ~events w ~lo:0 ~hi:(c - 1)
          else (0, 0, 0)
        in
        (ln + pn, lr + pr, lp + pp)
    | Some _ | None -> cut_segment config cache ~events w ~lo:0 ~hi:m

(* Entry point: react to one profiler signal.  [on_path] observes the
   length (in transitions) of each maximum-likelihood walk, before the
   probability cut — the engine feeds its builder-path histogram with
   it. *)
let on_signal ?(events = Events.create ()) ?(on_path = fun (_ : int) -> ())
    (config : Config.t) (cache : Trace_cache.t) (signal : Bcg.signal) : outcome
    =
  let entries = find_entry_points config signal.Bcg.s_node in
  let new_traces = ref 0 in
  let reused = ref 0 in
  let pruned = ref 0 in
  List.iter
    (fun root ->
      let n, r, p = build_from config cache ~events ~on_path root in
      new_traces := !new_traces + n;
      reused := !reused + r;
      pruned := !pruned + p)
    entries;
  {
    new_traces = !new_traces;
    reused_traces = !reused;
    entry_points = List.length entries;
    pruned_guards = !pruned;
  }

(* OSR mid-loop promotion (ROADMAP item 4): build the hot loop's
   back-edge trace *now*, without waiting for a profiler signal.

   This walk is deliberately not the signal path's maximum-likelihood
   walk: that one refuses immature (newly created / weakly correlated)
   nodes, and a loop hot enough to promote mid-iteration has usually not
   had time to mature its correlations — waiting for maturity is exactly
   what promotion exists to avoid.  Instead, starting from the hottest
   transition entering [header] in any state, best successors are
   followed until the walk returns to the header (the back edge closes)
   or gives out.  A mispredicted pick costs at worst a deopt when the
   trace's guard fails — never correctness — so immaturity only bounds
   the trace's useful lifetime, not its safety.

   The closed walk [header .. latch] installs with the latch as its
   entry context, so the trace is bound at the latch->header transition
   and its last block is that same latch: it chains back into itself,
   and the loop runs under trace dispatch from the very next back edge.
   Returns the installed trace so the caller can arm it for its first
   OSR entry. *)
let promote ?(events = Events.create ()) ?(on_path = fun (_ : int) -> ())
    (config : Config.t) (cache : Trace_cache.t) (bcg : Bcg.t)
    ~(header : Layout.gid) : outcome * Trace.t option =
  let root = ref None in
  Bcg.iter_nodes bcg (fun (n : Bcg.node) ->
      if n.Bcg.n_y = header then
        match !root with
        | Some (r : Bcg.node) when r.Bcg.exec_total >= n.Bcg.exec_total -> ()
        | _ -> root := Some n);
  match !root with
  | None -> (no_outcome, None)
  | Some root ->
      let rev_blocks = ref [ header ] in
      let len = ref 1 in
      let prob = ref 1.0 in
      let cur = ref root in
      let closed = ref false in
      let stalled = ref false in
      (* the closed walk installs as ONE trace, so it answers to the
         cutter's length bound (TL209) as well as the walk cap *)
      let cap = min (Config.max_walk config) (Config.max_trace_blocks config) in
      while (not !closed) && (not !stalled) && !len < cap do
        match (!cur).Bcg.best with
        | None -> stalled := true
        | Some e ->
            prob := !prob *. Bcg.correlation !cur e;
            let target = e.Bcg.e_target in
            if target.Bcg.n_y = header then closed := true
            else begin
              rev_blocks := target.Bcg.n_y :: !rev_blocks;
              incr len;
              cur := target
            end
      done;
      on_path !len;
      if (not !closed) || !len < Config.min_trace_blocks config then
        ({ no_outcome with entry_points = 1 }, None)
      else begin
        let blocks = Array.of_list (List.rev !rev_blocks) in
        (* the latch: last block of the body, and the entry context *)
        let first = blocks.(Array.length blocks - 1) in
        let (n, r, p), installed =
          install_candidate config cache ~events ~first ~blocks ~prob:!prob
        in
        (match installed with
        | Some tr -> tr.Trace.promoted <- true
        | None -> ());
        ( {
            new_traces = n;
            reused_traces = r;
            entry_points = 1;
            pruned_guards = p;
          },
          installed )
      end
