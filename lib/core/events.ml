(* The typed event stream.

   A stream is a list of subscribers kept in subscription order plus a
   logical clock (the engine's dispatch index).  Emission is synchronous;
   the disabled stream (no subscribers) is a no-op, and emission sites
   guard payload construction behind [enabled] so a silent run allocates
   nothing. *)

type evict_reason = Capacity | Pressure | Quarantine | Footprint

let evict_reason_to_string = function
  | Capacity -> "capacity"
  | Pressure -> "pressure"
  | Quarantine -> "quarantine"
  | Footprint -> "footprint"

type payload =
  | Signal_raised of {
      x : Cfg.Layout.gid;
      y : Cfg.Layout.gid;
      old_state : State.t;
      new_state : State.t;
      best_changed : bool;
    }
  | Trace_constructed of {
      trace_id : int;
      first : Cfg.Layout.gid;
      n_blocks : int;
      n_instrs : int;
      prob : float;
      reused : bool;
    }
  | Trace_replaced of {
      first : Cfg.Layout.gid;
      head : Cfg.Layout.gid;
      trace_id : int;
    }
  | Trace_entered of { trace_id : int; chained : bool }
  | Side_exit of {
      trace_id : int;
      at_block : int;
      matched_blocks : int;
      matched_instrs : int;
    }
  | Trace_completed of { trace_id : int; n_blocks : int; n_instrs : int }
  | Decay_pass of { decays : int }
  | Phase_snapshot of Metrics.snapshot
  | Invariant_violation of {
      code : string;
      severity : string;
      message : string;
    }
  | Fault_injected of { code : string; detail : string }
  | Trace_quarantined of {
      trace_id : int;
      first : Cfg.Layout.gid;
      head : Cfg.Layout.gid;
      code : string;
      attempts : int;
      until : int;
    }
  | Trace_evicted of {
      trace_id : int;
      first : Cfg.Layout.gid;
      head : Cfg.Layout.gid;
      n_live : int;
      reason : evict_reason;
    }
  | Mode_degraded of { from_level : Health.level; to_level : Health.level }
  | Mode_recovered of { from_level : Health.level; to_level : Health.level }
  | Cache_restored of {
      traces : int;
      cache_blocks : int;
      bcg_nodes : int;
      bcg_edges : int;
    }
  | Snapshot_rejected of { reason : string }
  | Guards_pruned of { trace_id : int; pruned : int; guards : int }
  | Deopt_entered of {
      trace_id : int;
      at_block : int; (* trace position of the failed/abandoned guard *)
      resume_block : int; (* gid block dispatch resumes at; -1 unknown *)
      residue_blocks : int; (* trace positions abandoned past at_block *)
      reason : string; (* "guard-failure" | "guard-flip" | "condemned" *)
    }
  | Osr_promoted of {
      trace_id : int;
      header : Cfg.Layout.gid;
      latch : Cfg.Layout.gid;
      hotness : int;
    }
  | Trace_compiled of {
      trace_id : int;
      ops : int; (* micro-ops in the lowered body *)
      fused : int; (* superinstructions formed *)
      src_instrs : int; (* source bytecode instructions lowered *)
    }
  | Tier_demoted of {
      trace_id : int;
      uses : int; (* cache heat at demotion — the losing bid *)
    }

type event = { time : int; payload : payload }

type subscription = int

type t = {
  mutable subs : (subscription * (event -> unit)) list;
      (* in subscription order *)
  mutable next_sub : subscription;
  mutable now : int;
  mutable emitted : int;
  mutable tap : (event -> unit) option;
      (* out-of-band observer (the flight recorder): sees every event
         but does not count as a subscriber — [emitted] and
         [n_subscribers] are unaffected, so a tapped-but-unsubscribed
         stream still reports itself quiet to user code *)
}

let create () = { subs = []; next_sub = 0; now = 0; emitted = 0; tap = None }

let enabled t = t.subs <> [] || t.tap <> None

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  t.subs <- t.subs @ [ (id, f) ];
  id

let unsubscribe t id = t.subs <- List.filter (fun (i, _) -> i <> id) t.subs

let n_subscribers t = List.length t.subs

let set_tap t f = t.tap <- Some f

let clear_tap t = t.tap <- None

let set_now t n = t.now <- n

let now t = t.now

let emit t payload =
  match (t.subs, t.tap) with
  | [], None -> ()
  | subs, tap ->
      let ev = { time = t.now; payload } in
      (match tap with Some f -> f ev | None -> ());
      (match subs with
      | [] -> ()
      | subs ->
          t.emitted <- t.emitted + 1;
          List.iter (fun (_, f) -> f ev) subs)

let emitted t = t.emitted

let kind = function
  | Signal_raised _ -> "signal_raised"
  | Trace_constructed _ -> "trace_constructed"
  | Trace_replaced _ -> "trace_replaced"
  | Trace_entered _ -> "trace_entered"
  | Side_exit _ -> "side_exit"
  | Trace_completed _ -> "trace_completed"
  | Decay_pass _ -> "decay_pass"
  | Phase_snapshot _ -> "phase_snapshot"
  | Invariant_violation _ -> "invariant_violation"
  | Fault_injected _ -> "fault_injected"
  | Trace_quarantined _ -> "trace_quarantined"
  | Trace_evicted _ -> "trace_evicted"
  | Mode_degraded _ -> "mode_degraded"
  | Mode_recovered _ -> "mode_recovered"
  | Cache_restored _ -> "cache_restored"
  | Snapshot_rejected _ -> "snapshot_rejected"
  | Guards_pruned _ -> "guards_pruned"
  | Deopt_entered _ -> "deopt_entered"
  | Osr_promoted _ -> "osr_promoted"
  | Trace_compiled _ -> "trace_compiled"
  | Tier_demoted _ -> "tier_demoted"
