(** Trace-cache dispatch ([Health.Full_tracing]): the complete system of
    the paper — cache hits become trace dispatches with inlined interior
    blocks, misses are profiled block dispatches, and under self-healing
    every candidate trace is validated before entry.  See
    {!Backend.S}. *)

include Backend.S

(** {2 The reusable dispatch skeleton}

    [Backend_microir] is this strategy with a different entry action;
    these expose the pieces it composes. *)

val enter : Backend.ctx -> Trace.t -> Cfg.Layout.gid -> unit
(** Enter a trace the dispatch lookup produced: pin it, count the trace
    dispatch, emit [Trace_entered], run the single profiler hook and
    start following (a single-block trace completes immediately). *)

val step_with :
  enter:(Backend.ctx -> Trace.t -> Cfg.Layout.gid -> unit) ->
  Backend.ctx ->
  Cfg.Layout.gid ->
  unit
(** The full outside-trace dispatch decision — cache lookup, OSR
    mid-loop promotion retry, dispatch validation under self-healing,
    ladder accounting — with the cache-hit action supplied by the
    caller.  [step] is [step_with ~enter]. *)
