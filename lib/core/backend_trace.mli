(** Trace-cache dispatch ([Health.Full_tracing]): the complete system of
    the paper — cache hits become trace dispatches with inlined interior
    blocks, misses are profiled block dispatches, and under self-healing
    every candidate trace is validated before entry.  See
    {!Backend.S}. *)

include Backend.S
