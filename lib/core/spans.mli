(** Causal spans over the engine's dispatch clock, in a bounded ring
    buffer.

    A span covers an engine activity — a trace build, a heal sweep, a
    quarantine episode, a session member turn — between two dispatch-tick
    timestamps.  Parent links come from the stack of currently-open
    spans, so nesting is causal (the heal sweep that runs at a
    trace-build boundary is the build's child).

    The recorder is bounded: it keeps the last [capacity] spans by id
    and overwrites older ones ({!dropped} counts the overwrites), so the
    hot path never allocates unboundedly.  {!find} validates the stored
    id, so a parent link to an evicted span resolves to [None] rather
    than to whichever span reused its slot — wraparound can lose
    ancestors but never fabricates them. *)

type t

type kind = Trace_build | Heal_sweep | Quarantine | Member_turn

val kind_to_string : kind -> string
(** Stable lowercase tag, used as the Chrome trace category. *)

type span = {
  id : int;  (** dense, increasing from 0 *)
  parent : int;  (** parent span id; [-1] for a root span *)
  kind : kind;
  label : string;
  start_time : int;  (** dispatch tick at begin *)
  start_seq : int;
      (** position on the global begin/end event clock — orders events
          that share a dispatch tick *)
  mutable end_time : int;  (** dispatch tick at end; [-1] while open *)
  mutable end_seq : int;  (** [-1] while open *)
}

val create : ?capacity:int -> unit -> t
(** Ring capacity in spans (default [4096]).
    @raise Invalid_argument if [capacity < 2]. *)

val capacity : t -> int

val begin_span : t -> kind:kind -> label:string -> now:int -> int
(** Open a span at dispatch tick [now], parented under the innermost
    open span; returns its id for {!end_span}. *)

val end_span : t -> int -> now:int -> unit
(** Close the span.  No-op on an already-closed or evicted id (beyond
    removing it from the open stack). *)

val emit :
  t -> kind:kind -> label:string -> start_time:int -> end_time:int -> int
(** Record a span whose extent is known up front (e.g. a quarantine
    episode ending at its backoff expiry).  Recorded closed — it never
    joins the open stack — but parented under the innermost open span. *)

val end_all : t -> now:int -> unit
(** Close every open span (outermost last); call before exporting. *)

val find : t -> int -> span option
(** The span with this id, if still in the ring. *)

val to_list : t -> span list
(** Spans still in the ring, in id (begin) order. *)

val iter : t -> (span -> unit) -> unit

val recorded : t -> int
(** Total spans ever begun (ids handed out). *)

val dropped : t -> int
(** Spans overwritten by wraparound. *)

val n_open : t -> int

val current : t -> int
(** Id of the innermost open span, or [-1] when none is open — the
    span the decision ledger attributes an action to. *)

val set_on_close : t -> (span -> unit) -> unit
(** Install a hook fired once per span closure ({!end_span} on an open
    span, or a pre-closed {!emit}) — the flight recorder's span
    intake.  At most one hook; installing again replaces it. *)
