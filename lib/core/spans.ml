(* Causal spans over the engine's dispatch clock, in a bounded ring.

   A span covers an engine activity (a trace build, a heal sweep, a
   quarantine episode, a session member turn) between two dispatch-tick
   timestamps.  Parent links come from a stack of currently-open spans,
   so nesting is causal: the heal sweep that runs inside a trace-build
   boundary is recorded as that build's child.

   The ring holds the last [capacity] spans by id (slot = id mod
   capacity); older spans are overwritten and counted in [dropped], so
   the recorder never allocates past its bound no matter how long the
   run is.  [find] validates the stored id, so a dangling parent id
   resolves to [None] rather than to whichever span reused the slot. *)

type kind = Trace_build | Heal_sweep | Quarantine | Member_turn

let kind_to_string = function
  | Trace_build -> "trace_build"
  | Heal_sweep -> "heal_sweep"
  | Quarantine -> "quarantine"
  | Member_turn -> "member_turn"

type span = {
  id : int;
  parent : int; (* parent span id, -1 for a root span *)
  kind : kind;
  label : string;
  start_time : int; (* dispatch tick at begin *)
  start_seq : int; (* global event order: begins and ends share one clock *)
  mutable end_time : int; (* -1 while open *)
  mutable end_seq : int; (* -1 while open *)
}

type t = {
  ring : span option array;
  capacity : int;
  mutable next_id : int;
  mutable next_seq : int;
  mutable dropped : int;
  mutable open_stack : int list; (* innermost open span first *)
  mutable on_close : (span -> unit) option;
      (* fired once per span closure (end_span on an open span, or a
         pre-closed emit) — the flight recorder's span intake *)
}

let create ?(capacity = 4096) () =
  if capacity < 2 then invalid_arg "Spans.create: capacity < 2";
  {
    ring = Array.make capacity None;
    capacity;
    next_id = 0;
    next_seq = 0;
    dropped = 0;
    open_stack = [];
    on_close = None;
  }

let capacity t = t.capacity

let recorded t = t.next_id

let dropped t = t.dropped

let n_open t = List.length t.open_stack

let current t = match t.open_stack with [] -> -1 | id :: _ -> id

let set_on_close t f = t.on_close <- Some f

let store t span =
  let slot = span.id mod t.capacity in
  (match t.ring.(slot) with
  | Some _ -> t.dropped <- t.dropped + 1
  | None -> ());
  t.ring.(slot) <- Some span

let begin_span t ~kind ~label ~now =
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let parent = match t.open_stack with [] -> -1 | p :: _ -> p in
  store t
    {
      id;
      parent;
      kind;
      label;
      start_time = now;
      start_seq = seq;
      end_time = -1;
      end_seq = -1;
    };
  t.open_stack <- id :: t.open_stack;
  id

let find t id =
  if id < 0 || id >= t.next_id then None
  else
    match t.ring.(id mod t.capacity) with
    | Some s when s.id = id -> Some s
    | _ -> None

let end_span t id ~now =
  (match find t id with
  | Some s when s.end_time < 0 ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      s.end_time <- now;
      s.end_seq <- seq;
      (match t.on_close with Some f -> f s | None -> ())
  | _ -> () (* evicted from the ring, or already closed: still unstack *));
  t.open_stack <- List.filter (fun i -> i <> id) t.open_stack

(* A span whose extent is known up front (a quarantine episode's end is
   its backoff expiry); recorded closed, never on the open stack, but
   still parented under the innermost open span. *)
let emit t ~kind ~label ~start_time ~end_time =
  let id = t.next_id in
  t.next_id <- id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 2;
  let parent = match t.open_stack with [] -> -1 | p :: _ -> p in
  let span =
    {
      id;
      parent;
      kind;
      label;
      start_time;
      start_seq = seq;
      end_time;
      end_seq = seq + 1;
    }
  in
  store t span;
  (match t.on_close with Some f -> f span | None -> ());
  id

let end_all t ~now =
  let opens = t.open_stack in
  List.iter (fun id -> end_span t id ~now) opens

let to_list t =
  let acc = ref [] in
  Array.iter (function Some s -> acc := s :: !acc | None -> ()) t.ring;
  List.sort (fun a b -> compare a.id b.id) !acc

let iter t f = List.iter f (to_list t)
