(** The trace cache (paper §4.2): traces indexed two ways — by entry
    transition for dispatch, and by full block sequence for hash-consing,
    so an identical reconstruction is retrieved and relinked rather than
    rebuilt.  Rebinding an entry transition to a different trace counts as
    an instability event ({!n_replaced}).

    On top of the paper's design the cache is {e bounded} and
    {e self-healing}:

    - the capacity caps ([max_traces] live traces / [max_blocks] live
      blocks; [0] = unbounded) evict a victim under pressure
      ({!n_evicted}, [Trace_evicted] events) chosen by the
      {!Config.Cache.eviction_policy}: the least recently dispatched
      entry ([Lru], the default), or the entry with the worst estimated
      i-cache bytes per use ([Footprint_aware], byte model shared with
      the harness footprint report via [Footprint_model]);
    - {!snapshot} / {!restore} capture and rebind the live cache for
      warm starts — the value half of the [Persist] binary format;
    - {!quarantine} blacklists an entry transition whose trace was
      condemned by a TL2xx check or an injected fault, with exponential
      backoff in cache-clock units ({!set_clock}) and permanent
      blacklisting after [heal_max_rebuilds] condemnations;
    - {!try_install} is the fallible front door the trace builder uses:
      it refuses quarantined entries and consumes injected installation
      failures ({!inject_install_failure}), so the builder degrades
      gracefully instead of reinstalling a known-bad trace. *)

type t

val create :
  ?events:Events.t ->
  ?max_traces:int ->
  ?max_blocks:int ->
  ?eviction_policy:Config.Cache.eviction_policy ->
  ?heal_max_rebuilds:int ->
  ?heal_backoff:int ->
  Cfg.Layout.t ->
  t
(** [events] receives [Trace_replaced] / [Trace_evicted] /
    [Trace_quarantined]; a fresh disabled stream is used when omitted.
    [max_traces] and [max_blocks] default to [0] (unbounded),
    [eviction_policy] to [Lru]; [heal_max_rebuilds] defaults to 3 and
    [heal_backoff] to 512 cache clock units.
    @raise Invalid_argument on out-of-range parameters. *)

val layout : t -> Cfg.Layout.t
(** The layout the cache was created over — a shared cache may only
    serve engines running the same layout. *)

val set_clock : t -> int -> unit
(** Advance the cache clock (the engine's dispatch count) — the time base
    of quarantine backoff. *)

val set_ledger : t -> Ledger.t -> unit
(** Attach the engine's decision ledger.  Installs, evictions (with
    their victim-scoring inputs) and quarantines are recorded at the
    cache site that knows them; [Tier] reaches the same ledger through
    {!ledger}. *)

val ledger : t -> Ledger.t option

val set_session : t -> int -> unit
(** Announce which session's dispatches follow.  A cache shared between
    sessions (the [Session] layer) is told the current session id before
    each batch, so new traces are stamped with their builder
    ({!Trace.t.owner}) and reuse across sessions is counted
    ({!n_cross_installs} / {!n_cross_entries}).  Solo engines leave this
    at [0]. *)

val session : t -> int
(** The session id announced by the last {!set_session} ([0] initially). *)

val lookup : t -> prev:Cfg.Layout.gid -> cur:Cfg.Layout.gid -> Trace.t option
(** Dispatch lookup: the trace entered by the transition [(prev, cur)],
    if any ([prev < 0] never matches).  A hit refreshes the entry's LRU
    stamp. *)

val peek : t -> first:Cfg.Layout.gid -> head:Cfg.Layout.gid -> Trace.t option
(** The trace bound to the entry transition [(first, head)], if any,
    {e without} refreshing its LRU stamp or counting a dispatch — for
    observers (the OSR promotion glue, tests) that must not heat the
    entry. *)

val install :
  t ->
  first:Cfg.Layout.gid ->
  blocks:Cfg.Layout.gid array ->
  prob:float ->
  Trace.t
(** Install a candidate trace.  An identical cached trace is reused
    (hash-cons hit); otherwise a new trace is constructed and bound to its
    entry transition, displacing any previous binding.  Installation may
    push the cache over a capacity cap, in which case the least recently
    dispatched {e other} entries are evicted until the caps hold again
    (the trace just installed is never its own victim). *)

val try_install :
  t ->
  first:Cfg.Layout.gid ->
  blocks:Cfg.Layout.gid array ->
  prob:float ->
  Trace.t option
(** Like {!install} but fallible: [None] when the entry transition is
    quarantined ({!n_quarantine_rejects}) or an injected installation
    failure is pending ({!n_failed_installs}). *)

val remove : t -> first:Cfg.Layout.gid -> head:Cfg.Layout.gid -> Trace.t option
(** Unbind the entry transition [(first, head)], returning the trace it
    was bound to.  The removed trace also leaves the hash-cons table, so
    a later identical reconstruction builds a fresh trace.  {!n_live} and
    {!live_blocks} stay consistent. *)

val quarantine :
  t ->
  first:Cfg.Layout.gid ->
  head:Cfg.Layout.gid ->
  code:string ->
  Trace.t option
(** Condemn the entry transition [(first, head)] (the [code] names the
    TL2xx / FT0xx finding): the bound trace, if any, is removed as by
    {!remove}, and the entry is blacklisted until
    [clock + heal_backoff * 2^(attempts-1)] — permanently once its
    condemnation count exceeds [heal_max_rebuilds].  Emits
    [Trace_quarantined].

    If the bound trace is currently {!pin}ned (being executed), the
    condemnation is {e refused} wholly — no unbind, no blacklist record,
    [None] returned, {!n_pin_refusals} bumped.  Callers that must
    condemn an executing trace (the OSR mid-flight cut-over) deopt and
    unpin first. *)

(** {2 Execution pins}

    The dispatch loop pins a trace for as long as it is being followed:
    a pinned trace is never an eviction victim, {!quarantine} refuses to
    condemn it, and {!demote_lowered} refuses to drop its compiled-tier
    body.  Pins are refcounted because the [Session] layer shares one
    cache between members. *)

val pin : t -> Trace.t -> unit
(** Increment the trace's execution refcount. *)

val unpin : t -> Trace.t -> unit
(** Decrement the refcount ([0] removes the pin).  Unpinning a trace
    that is not pinned is a no-op ({!flush} may have dropped it). *)

val is_pinned : t -> Trace.t -> bool

val n_pinned : t -> int
(** Distinct traces currently pinned. *)

val n_pin_refusals : t -> int
(** {!quarantine} condemnations refused because the bound trace was
    pinned. *)

val n_demote_refusals : t -> int
(** {!demote_lowered} demotions refused because the compiled trace was
    pinned (being executed on the compiled tier). *)

(** {2 The compiled tier's cache view}

    The tier cost model ([Tier]) reads heat and the compiled population
    through these; the lowered bodies themselves live on the traces
    ([Trace.t.lowered]) as derived, never-persisted state. *)

val trace_uses : t -> Trace.t -> int
(** The use count (heat) of the trace's own entry binding — the signal
    the tier cost model promotes and demotes on. *)

val n_compiled : t -> int
(** Live traces currently holding a lowered body. *)

val demote_lowered : t -> Trace.t -> bool
(** Drop the trace's lowered body, freeing its compiled-tier slot.
    Returns [false] without touching the trace when it has no lowered
    body, or when it is {!pin}ned — a dispatch loop is following its
    micro-IR right now ({!n_demote_refusals} bumped); callers retry
    after the trace exits. *)

val coldest_compiled : t -> excluding:Trace.t option -> Trace.t option
(** The live compiled trace with the fewest uses, skipping pinned traces
    and [excluding] — the budget demotion's victim. *)

val is_quarantined : t -> first:Cfg.Layout.gid -> head:Cfg.Layout.gid -> bool
(** Whether the entry transition is blacklisted at the current clock. *)

val quarantine_attempts :
  t -> first:Cfg.Layout.gid -> head:Cfg.Layout.gid -> int
(** Condemnations of this entry so far (0 = never condemned). *)

val quarantine_until :
  t -> first:Cfg.Layout.gid -> head:Cfg.Layout.gid -> int option
(** The clock value this entry's quarantine expires at ([max_int] for a
    permanent blacklist); [None] if the entry was never condemned. *)

val inject_install_failure : t -> unit
(** Arm one installation failure: the next {!try_install} that passes the
    quarantine check returns [None] (the fault injector's FT006). *)

val pressure_evict : t -> down_to:int -> int
(** Evict entries until at most [down_to] live traces remain; returns
    the number evicted (the fault injector's FT007 allocation-pressure
    fault).  Victims are chosen by the configured
    {!Config.Cache.eviction_policy}; the emitted [Trace_evicted] reason
    is [Pressure] under [Lru] and [Footprint] under [Footprint_aware].
    {!pin}ned traces are never victims, so the eviction may stop above
    [down_to]. *)

(** {2 Warm-start snapshots} *)

type entry_snap = {
  snap_first : Cfg.Layout.gid;  (** entry context block *)
  snap_blocks : Cfg.Layout.gid array;  (** the trace's block sequence *)
  snap_prob : float;  (** completion probability at construction *)
  snap_heat : int;
      (** the entry's use count, preserved so footprint-aware eviction
          does not treat every restored trace as cold *)
}
(** One live cache entry as captured by {!snapshot} — everything needed
    to rebind an identical trace in a fresh cache over the same
    layout. *)

val snapshot : t -> entry_snap list
(** The live cache in canonical (entry-key) order.  Runtime state —
    counters, LRU stamps, quarantine records — is not captured, so
    snapshot → restore → snapshot is bit-identical. *)

val restore : ?promoted_below:float -> t -> entry_snap list -> int
(** Rebind every snapshot entry (constructing traces afresh over this
    cache's layout, hash-cons deduplicated), returning the number
    restored.  Restored traces count toward {!n_restored}, not
    {!n_constructed}, and carry the current session as owner.  Capacity
    caps are enforced as usual, so restoring into a smaller cache keeps
    the policy's preferred subset.  [promoted_below] (normally the
    config's correlation threshold) re-marks sub-threshold snapshots as
    OSR-promoted loop traces — the greedy cutter never commits below the
    threshold, so the probability alone identifies them.
    @raise Invalid_argument on an empty block sequence. *)

val n_restored : t -> int
(** Entries rebound from snapshots by {!restore}. *)

val eviction_policy : t -> Config.Cache.eviction_policy

val footprint_bytes : t -> int
(** Estimated i-cache footprint of the live cache under the shared byte
    model ([Footprint_model.trace_bytes] summed over live traces) — the
    quantity the footprint-aware policy minimises per unit of heat. *)

val iter : t -> (Trace.t -> unit) -> unit
(** Over the traces currently bound to an entry (the live cache). *)

val iter_entries :
  t ->
  (first:Cfg.Layout.gid -> head:Cfg.Layout.gid -> Trace.t -> unit) ->
  unit
(** Like {!iter} but also decodes the entry transition each trace is bound
    under, so invariant checkers can compare the binding against the
    trace's own {!Trace.entry_key}. *)

val iter_all : t -> (Trace.t -> unit) -> unit
(** Over every trace ever constructed and still reachable for
    hash-consing, including displaced ones — the population the
    completion statistics are drawn from. *)

val n_live : t -> int

val live_blocks : t -> int
(** Total block count of live traces — the quantity [max_blocks] caps. *)

val n_constructed : t -> int

val n_replaced : t -> int

val n_evicted : t -> int
(** Capacity (and allocation-pressure) evictions. *)

val n_quarantines : t -> int
(** Condemnations recorded (an entry condemned twice counts twice). *)

val n_quarantine_active : t -> int
(** Entry transitions blacklisted at the current clock. *)

val n_blacklisted : t -> int
(** Entry transitions quarantined permanently. *)

val n_failed_installs : t -> int
(** Injected installation failures consumed by {!try_install}. *)

val n_quarantine_rejects : t -> int
(** {!try_install} refusals due to an active quarantine. *)

val n_cross_installs : t -> int
(** Hash-cons hits where the cached trace was built by a different
    session than the one installing — constructions the current session
    never had to pay for.  Always [0] for a solo engine. *)

val n_cross_entries : t -> int
(** Dispatch lookups that entered a trace built by a different session.
    Always [0] for a solo engine. *)

val flush : t -> unit
(** Empty the cache — live traces, hash-cons table and quarantine records
    (Dynamo's bail-out; never needed by the BCG design, provided for
    experiments).  Counters survive. *)
