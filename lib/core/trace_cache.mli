(** The trace cache (paper §4.2): traces indexed two ways — by entry
    transition for dispatch, and by full block sequence for hash-consing,
    so an identical reconstruction is retrieved and relinked rather than
    rebuilt.  Rebinding an entry transition to a different trace counts as
    an instability event ({!n_replaced}). *)

type t

val create : ?events:Events.t -> Cfg.Layout.t -> t
(** [events] receives [Trace_replaced] whenever an entry transition is
    rebound to a different trace; a fresh disabled stream is used when
    omitted. *)

val lookup : t -> prev:Cfg.Layout.gid -> cur:Cfg.Layout.gid -> Trace.t option
(** Dispatch lookup: the trace entered by the transition [(prev, cur)],
    if any ([prev < 0] never matches). *)

val install :
  t ->
  first:Cfg.Layout.gid ->
  blocks:Cfg.Layout.gid array ->
  prob:float ->
  Trace.t
(** Install a candidate trace.  An identical cached trace is reused
    (hash-cons hit); otherwise a new trace is constructed and bound to its
    entry transition, displacing any previous binding. *)

val iter : t -> (Trace.t -> unit) -> unit
(** Over the traces currently bound to an entry (the live cache). *)

val iter_entries :
  t ->
  (first:Cfg.Layout.gid -> head:Cfg.Layout.gid -> Trace.t -> unit) ->
  unit
(** Like {!iter} but also decodes the entry transition each trace is bound
    under, so invariant checkers can compare the binding against the
    trace's own {!Trace.entry_key}. *)

val iter_all : t -> (Trace.t -> unit) -> unit
(** Over every trace ever constructed, including displaced ones — the
    population the completion statistics are drawn from. *)

val n_live : t -> int

val n_constructed : t -> int

val n_replaced : t -> int

val flush : t -> unit
(** Empty the cache (Dynamo's bail-out; never needed by the BCG design,
    provided for experiments). *)
