(** Parameters of the profiling and trace-generation algorithm (paper
    §5.2).

    The two parameters the paper sweeps are {!field:start_state_delay}
    (1 / 64 / 4096) and {!field:threshold} (1.00 … 0.95); the rest are the
    constants the paper fixes: a 256-dispatch decay period and 16-bit
    saturating counters. *)

type t = {
  start_state_delay : int;
      (** Executions before a branch node leaves the newly-created state;
          filters rarely executed code.  Paper values: 1, 64, 4096. *)
  threshold : float;
      (** Minimum expected trace completion probability, in (0, 1].  Also
          the strong/weak correlation boundary.  Paper values: 1.00, 0.99,
          0.98, 0.97 (best), 0.95. *)
  decay_period : int;
      (** Node executions between periodic exponential decay passes
          (paper: 256). *)
  counter_max : int;
      (** Saturation value of the correlation counters (paper: 16-bit,
          65535). *)
  max_trace_blocks : int;  (** Defensive cap on trace length in blocks. *)
  min_trace_blocks : int;
      (** Traces shorter than this are not cached (a 1-block trace is a
          no-op). *)
  max_walk : int;  (** Cap on the maximum-likelihood walk length. *)
  max_backtrack : int;  (** Cap on entry-point backtracking depth. *)
  build_traces : bool;
      (** When [false] the engine profiles every dispatch but never builds
          or dispatches traces — the configuration of the paper's Table VI
          overhead measurement. *)
  snapshot_period : int;
      (** Dispatches between periodic {!Metrics} snapshots; [0]
          (default) disables the snapshot series. *)
  debug_checks : bool;
      (** Run the trace/BCG invariant checks ([Invariants]) at
          trace-construction and decay boundaries, emitting an
          [Invariant_violation] event per finding.  Off by default: the
          checks walk every node and trace, which costs real time on hot
          paths. *)
  max_cache_traces : int;
      (** Bound on live traces in the cache; [0] (default) = unbounded.
          Exceeding it evicts the least recently dispatched entry, so
          memory pressure degrades hit rate instead of crashing. *)
  max_cache_blocks : int;
      (** Bound on the total block count of live traces; [0] = unbounded. *)
  self_heal : bool;
      (** Validate traces at dispatch, quarantine any trace a TL2xx
          check or an injected fault touches, heal corrupted BCG nodes,
          and walk the [Health] degradation ladder
          (full tracing → profiling-only → pure interpretation) with
          recovery probes back up.  Off by default. *)
  heal_max_rebuilds : int;
      (** Quarantines of one entry transition before it is permanently
          blacklisted (default 3). *)
  heal_backoff : int;
      (** Node executions before a quarantined entry may be rebuilt;
          doubles on every further quarantine of the same entry
          (default 512). *)
  heal_demote_after : int;
      (** Detections before dropping one health level (default 3). *)
  heal_recover_after : int;
      (** Consecutive clean dispatches before climbing one health level
          back up (default 400). *)
  fault_spec : string;
      (** Fault-injection schedule (see [Faults.parse] for the DSL);
          [""] (default) disables injection.  The engine parses it at
          creation and raises [Invalid_argument] on a malformed spec. *)
  fault_seed : int;  (** PRNG seed of the fault injector. *)
}

val default : t
(** The paper's preferred operating point: delay 64, threshold 0.97,
    decay 256, 16-bit counters. *)

val make :
  ?start_state_delay:int ->
  ?threshold:float ->
  ?decay_period:int ->
  ?counter_max:int ->
  ?max_trace_blocks:int ->
  ?min_trace_blocks:int ->
  ?max_walk:int ->
  ?max_backtrack:int ->
  ?build_traces:bool ->
  ?snapshot_period:int ->
  ?debug_checks:bool ->
  ?max_cache_traces:int ->
  ?max_cache_blocks:int ->
  ?self_heal:bool ->
  ?heal_max_rebuilds:int ->
  ?heal_backoff:int ->
  ?heal_demote_after:int ->
  ?heal_recover_after:int ->
  ?fault_spec:string ->
  ?fault_seed:int ->
  unit ->
  t
(** Labelled constructor over {!default}; every omitted parameter keeps
    its default.  Unlike a record literal, the result is {!validate}d on
    construction.
    @raise Invalid_argument on out-of-range parameters. *)

val validate : t -> unit
(** @raise Invalid_argument on out-of-range parameters. *)

val with_threshold : t -> float -> t

val with_delay : t -> int -> t

val pp : Format.formatter -> t -> unit
