(** Parameters of the profiling and trace-generation algorithm (paper
    §5.2), grouped into layered sub-records mirroring the subsystems
    that consume them.

    The two parameters the paper sweeps are
    {!field:Profile.start_state_delay} (1 / 64 / 4096) and
    {!field:Profile.threshold} (1.00 … 0.95); the rest are the constants
    the paper fixes: a 256-dispatch decay period and 16-bit saturating
    counters.

    Consumers should project through the per-field accessor functions
    ([Config.threshold cfg] etc.) rather than spelling the nesting; the
    flat {!make} constructor is the only way most callers build one. *)

(** Knobs of the BCG profiler and trace builder (paper §5.2 proper). *)
module Profile : sig
  type t = {
    start_state_delay : int;
        (** Executions before a branch node leaves the newly-created
            state; filters rarely executed code.  Paper values: 1, 64,
            4096. *)
    threshold : float;
        (** Minimum expected trace completion probability, in (0, 1].
            Also the strong/weak correlation boundary.  Paper values:
            1.00, 0.99, 0.98, 0.97 (best), 0.95. *)
    decay_period : int;
        (** Node executions between periodic exponential decay passes
            (paper: 256). *)
    counter_max : int;
        (** Saturation value of the correlation counters (paper: 16-bit,
            65535). *)
    max_trace_blocks : int;  (** Defensive cap on trace length in blocks. *)
    min_trace_blocks : int;
        (** Traces shorter than this are not cached (a 1-block trace is
            a no-op). *)
    max_walk : int;  (** Cap on the maximum-likelihood walk length. *)
    max_backtrack : int;  (** Cap on entry-point backtracking depth. *)
    build_traces : bool;
        (** When [false] the engine profiles every dispatch but never
            enters traces — the configuration of the paper's Table VI
            overhead measurement. *)
  }

  val default : t

  val validate : t -> unit
end

(** Trace-cache capacity bounds and eviction policy. *)
module Cache : sig
  type eviction_policy =
    | Lru  (** condemn the least recently dispatched entry (default) *)
    | Footprint_aware
        (** condemn the entry with the worst estimated i-cache bytes per
            use (footprint/heat ratio, ties broken by recency) — keeps
            hot-but-large traces over cold-but-small ones *)

  val eviction_policy_to_string : eviction_policy -> string
  (** Stable lowercase tag: ["lru"] / ["footprint"]. *)

  val eviction_policy_of_string : string -> eviction_policy option
  (** Inverse of {!eviction_policy_to_string}; [None] on unknown tags. *)

  type t = {
    max_traces : int;
        (** Bound on live traces in the cache; [0] (default) =
            unbounded.  Exceeding it evicts a victim chosen by
            [eviction_policy], so memory pressure degrades hit rate
            instead of crashing. *)
    max_blocks : int;
        (** Bound on the total block count of live traces;
            [0] = unbounded. *)
    eviction_policy : eviction_policy;
  }

  val default : t

  val validate : t -> unit
end

(** Self-healing machinery and the degradation ladder. *)
module Heal : sig
  type t = {
    self_heal : bool;
        (** Validate traces at dispatch, quarantine any trace a TL2xx
            check or an injected fault touches, heal corrupted BCG
            nodes, and walk the [Health] degradation ladder
            (full tracing → profiling-only → pure interpretation) with
            recovery probes back up.  Off by default. *)
    max_rebuilds : int;
        (** Quarantines of one entry transition before it is permanently
            blacklisted (default 3). *)
    backoff : int;
        (** Node executions before a quarantined entry may be rebuilt;
            doubles on every further quarantine of the same entry
            (default 512). *)
    demote_after : int;
        (** Detections before dropping one health level (default 3). *)
    recover_after : int;
        (** Consecutive clean dispatches before climbing one health
            level back up (default 400). *)
  }

  val default : t

  val validate : t -> unit
end

(** Fault-injection schedule. *)
module Faults : sig
  type t = {
    spec : string;
        (** Fault-injection schedule (see [Faults.parse] for the DSL);
            [""] (default) disables injection.  The engine parses it at
            creation and raises [Invalid_argument] on a malformed
            spec. *)
    seed : int;  (** PRNG seed of the fault injector. *)
  }

  val default : t

  val validate : t -> unit
end

(** On-stack replacement (OSR): mid-trace deoptimization and mid-loop
    promotion.  Off by default — the engine then behaves exactly as
    before: a guard failure abandons the trace residue and restarts
    block dispatch from the trace head transition. *)
module Osr : sig
  type t = {
    enabled : bool;
        (** When on, a guard failure (or a mid-flight condemnation of
            the executing trace) {e deoptimizes}: the interpreter state
            is materialized at the failing block and block dispatch
            resumes there; and hot loop headers detected by the
            profiling strategy are {e promoted} into freshly built
            traces mid-iteration, entered on the very next back-edge.
            Off by default. *)
    promote_after : int;
        (** Outside-trace dispatches of one loop header before the
            mid-loop promotion fires (default 96 — past the profiler's
            default [start_state_delay], so the loop's BCG nodes are
            followable by the time the builder runs). *)
  }

  val default : t

  val validate : t -> unit
end

(** The compiled tier: register micro-IR lowering of hot traces.  Off by
    default — the engine then never lowers anything and the [Trace]
    backend's behaviour is unchanged. *)
module Tier : sig
  type t = {
    enabled : bool;
        (** When on, traces whose cache heat crosses [compile_after] are
            lowered to register micro-IR ([Microir]) and dispatched by
            [Backend_microir]'s specialized loop.  Results are
            bit-identical either way: the lowered body only changes what
            dispatch {e accounts}, never what executes.  Off by
            default. *)
    compile_after : int;
        (** Cache uses of one trace before the cost model compiles it —
            the attribution hot-report proxy: a trace entered this often
            dominates dispatch cost (default 32). *)
    compile_budget : int;
        (** Bound on simultaneously compiled traces; exceeding it
            demotes the coldest compiled trace, except pinned
            (currently executing) ones (default 64). *)
  }

  val default : t

  val validate : t -> unit
end

(** Deep-observability knobs: span recording and hot-path attribution.
    Both are off by default — the quiescent engine pays nothing for
    them. *)
module Obs : sig
  type t = {
    spans : bool;
        (** Record causal spans ([Spans]) around trace builds, heal
            sweeps, quarantine episodes and session member turns.  Off
            by default. *)
    attribution : bool;
        (** Keep per-BCG-block self/inlined dispatch attribution (one
            word per block per array) feeding the hot-report.  Off by
            default. *)
    span_buffer : int;
        (** Span ring capacity; older spans are overwritten (default
            4096). *)
    hist_buckets : int;
        (** Power-of-two buckets per engine histogram, in [[2, 62]]
            (default 16, covering observations up to [2^14]).  Engine
            histograms themselves are always on: recording is O(1). *)
    flightrec_capacity : int;
        (** Flight-recorder ring capacity in entries (default 512).
            The recorder is always on — O(1) per record, bounded
            retention — and dumps its window on invariant violations,
            chaos divergence, snapshot rejection or degradation to
            interp-only.  0 disarms it entirely. *)
    ledger : bool;
        (** Append a decision-attribution record ({!Ledger}) on every
            consequential engine action.  On by default; the cost is
            proportional to those rare actions, not to dispatch. *)
  }

  val default : t

  val validate : t -> unit
end

type t = {
  profile : Profile.t;
  cache : Cache.t;
  heal : Heal.t;
  faults : Faults.t;
  obs : Obs.t;
  osr : Osr.t;
  tier : Tier.t;
  snapshot_period : int;
      (** Dispatches between periodic {!Metrics} snapshots; [0]
          (default) disables the snapshot series. *)
  debug_checks : bool;
      (** Run the trace/BCG invariant checks ([Invariants]) at
          trace-construction and decay boundaries, emitting an
          [Invariant_violation] event per finding.  Off by default: the
          checks walk every node and trace, which costs real time on hot
          paths. *)
  prune_guards : bool;
      (** Run guard-implication pruning ([Trace_prover]) on every newly
          installed trace: a forward fact environment (constant/interval
          facts plus earlier guard outcomes) proves some guards implied,
          and the dispatch loop elides them — they are counted as
          [guards_elided] instead of [guards_checked].  Off by
          default. *)
}

val default : t
(** The paper's preferred operating point: delay 64, threshold 0.97,
    decay 256, 16-bit counters. *)

val make :
  ?start_state_delay:int ->
  ?threshold:float ->
  ?decay_period:int ->
  ?counter_max:int ->
  ?max_trace_blocks:int ->
  ?min_trace_blocks:int ->
  ?max_walk:int ->
  ?max_backtrack:int ->
  ?build_traces:bool ->
  ?snapshot_period:int ->
  ?debug_checks:bool ->
  ?prune_guards:bool ->
  ?max_cache_traces:int ->
  ?max_cache_blocks:int ->
  ?eviction_policy:Cache.eviction_policy ->
  ?self_heal:bool ->
  ?heal_max_rebuilds:int ->
  ?heal_backoff:int ->
  ?heal_demote_after:int ->
  ?heal_recover_after:int ->
  ?fault_spec:string ->
  ?fault_seed:int ->
  ?osr:bool ->
  ?osr_promote_after:int ->
  ?tier:bool ->
  ?tier_compile_after:int ->
  ?tier_compile_budget:int ->
  ?obs_spans:bool ->
  ?obs_attribution:bool ->
  ?span_buffer:int ->
  ?hist_buckets:int ->
  ?flightrec_capacity:int ->
  ?ledger:bool ->
  unit ->
  t
(** Flat labelled constructor over {!default}; every omitted parameter
    keeps its default.  Unlike a record literal, the result is
    {!validate}d on construction.
    @raise Invalid_argument on out-of-range parameters. *)

val validate : t -> unit
(** @raise Invalid_argument on out-of-range parameters. *)

(** {2 Leaf accessors}

    One per knob; consumers use these instead of nested projections. *)

val start_state_delay : t -> int

val threshold : t -> float

val decay_period : t -> int

val counter_max : t -> int

val max_trace_blocks : t -> int

val min_trace_blocks : t -> int

val max_walk : t -> int

val max_backtrack : t -> int

val build_traces : t -> bool

val max_cache_traces : t -> int

val max_cache_blocks : t -> int

val eviction_policy : t -> Cache.eviction_policy

val self_heal : t -> bool

val heal_max_rebuilds : t -> int

val heal_backoff : t -> int

val heal_demote_after : t -> int

val heal_recover_after : t -> int

val fault_spec : t -> string

val fault_seed : t -> int

val osr_enabled : t -> bool

val osr_promote_after : t -> int

val tier_enabled : t -> bool

val tier_compile_after : t -> int

val tier_compile_budget : t -> int

val obs_spans : t -> bool

val obs_attribution : t -> bool

val span_buffer : t -> int

val hist_buckets : t -> int

val flightrec_capacity : t -> int

val ledger_enabled : t -> bool

val snapshot_period : t -> int

val debug_checks : t -> bool

val prune_guards : t -> bool

(** {2 Functional updates} *)

val with_threshold : t -> float -> t

val with_delay : t -> int -> t

val with_profile : t -> Profile.t -> t
(** Replace a whole layer; the result is re-{!validate}d.
    @raise Invalid_argument if the new layer is out of range. *)

val with_cache : t -> Cache.t -> t

val with_heal : t -> Heal.t -> t

val with_faults : t -> Faults.t -> t

val with_obs : t -> Obs.t -> t

val with_osr : t -> Osr.t -> t

val with_tier : t -> Tier.t -> t

val pp : Format.formatter -> t -> unit
