(* Decision ledger: a compact attribution record appended on every
   consequential engine action — builder outcomes, installs, guard
   prunes, quarantines, evictions (with the victim-scoring inputs),
   tier compiles/demotions (with the heat-vs-threshold state), OSR
   promotions and deopts.  Each record links back to the originating
   span and dispatch tick through thunks the engine installs, so the
   ledger itself depends on nothing above it.  Aggregate counts over
   the ledger must reconcile exactly with [Stats] — [Harness.Oracle]
   enforces that. *)

type action =
  | Build of { new_traces : int; reused : int; pruned : int }
  | Install of { replaced : bool; n_blocks : int }
  | Guard_prune of { pruned : int }
  | Quarantine of {
      code : string;
      attempts : int;
      until : int;
      permanent : bool;
    }
  | Evict of { reason : string; footprint : int; heat : int; stamp : int }
  | Compile of {
      heat : int;
      compile_after : int;
      budget : int;
      n_compiled : int;
    }
  | Demote of { heat : int; winner_heat : int }
  | Osr_promote of { header : int; latch : int; hotness : int }
  | Deopt of { at_pos : int; resume : int; residue : int; reason : string }

let action_kind = function
  | Build _ -> "build"
  | Install _ -> "install"
  | Guard_prune _ -> "guard_prune"
  | Quarantine _ -> "quarantine"
  | Evict _ -> "evict"
  | Compile _ -> "compile"
  | Demote _ -> "demote"
  | Osr_promote _ -> "osr_promote"
  | Deopt _ -> "deopt"

type record = {
  seq : int;
  tick : int;  (** dispatch tick at record time *)
  span : int;  (** innermost open span id, or -1 *)
  trace_id : int;  (** -1 when the action is not tied to one trace *)
  first : int;
  head : int;
  action : action;
}

type t = {
  mutable store : record array;
  mutable n : int;
  mutable tick_source : unit -> int;
  mutable span_source : unit -> int;
}

let create () =
  {
    store = [||];
    n = 0;
    tick_source = (fun () -> 0);
    span_source = (fun () -> -1);
  }

let set_sources t ~tick ~span =
  t.tick_source <- tick;
  t.span_source <- span

let length t = t.n

let record t ?(trace_id = -1) ?(first = -1) ?(head = -1) action =
  let r =
    {
      seq = t.n;
      tick = t.tick_source ();
      span = t.span_source ();
      trace_id;
      first;
      head;
      action;
    }
  in
  if t.n >= Array.length t.store then begin
    let cap = max 64 (2 * Array.length t.store) in
    let store = Array.make cap r in
    Array.blit t.store 0 store 0 t.n;
    t.store <- store
  end;
  t.store.(t.n) <- r;
  t.n <- t.n + 1

let iter f t =
  for i = 0 to t.n - 1 do
    f t.store.(i)
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    acc := t.store.(i) :: !acc
  done;
  !acc

let for_trace t id =
  List.filter (fun r -> r.trace_id = id) (to_list t)

let for_block t b =
  List.filter (fun r -> r.first = b || r.head = b) (to_list t)

(* Per-kind record counts, used by the stats oracle and 'explain'. *)
let totals t =
  let tbl = Hashtbl.create 16 in
  iter
    (fun r ->
      let k = action_kind r.action in
      Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0))
    t;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
