(* The five dependent values of the evaluation (paper §5.2), plus the raw
   counts they derive from. *)

type t = {
  instructions : int; (* bytecodes executed (= Figure-1 dispatch count) *)
  block_dispatches : int; (* dispatches outside traces (profiled) *)
  trace_dispatches : int; (* trace entries (one hook each) *)
  traces_entered : int;
  traces_completed : int;
  completed_blocks : int; (* sum over completions of the trace's block count *)
  partial_blocks : int; (* blocks executed by partially executed traces *)
  completed_instrs : int; (* instructions executed by completed traces *)
  partial_instrs : int; (* instructions executed by partially executed traces *)
  signals : int;
  traces_constructed : int;
  traces_replaced : int;
  traces_live : int;
  (* static view over distinct traces that completed at least once *)
  static_traces : int;
  static_blocks : int;
  bcg_nodes : int;
  bcg_edges : int;
  ic_predictions : int; (* inline-cache hits in the profiler *)
  chained_entries : int;
      (* trace entries directly following another trace's completion *)
  guards_checked : int;
      (* trace-position guards actually compared against the executed
         block during dispatch *)
  guards_elided : int;
      (* guard positions skipped because Trace_prover proved them
         implied (Trace.pruned verdicts) *)
  guards_pruned : int;
      (* static pruning verdicts derived at install time, summed over
         constructed traces *)
  (* resilience: the self-healing / chaos counters.  All zero on a
     healthy run without fault injection. *)
  invariant_violations : int; (* findings of the debug_checks sweeps *)
  faults_injected : int; (* faults the injector actually applied *)
  traces_quarantined : int; (* condemnations (entries may repeat) *)
  traces_evicted : int; (* capacity / pressure evictions *)
  traces_blacklisted : int; (* entries quarantined permanently *)
  failed_installs : int; (* injected installation failures consumed *)
  healed_nodes : int; (* BCG nodes repaired in place *)
  health_demotions : int;
  health_promotions : int;
  final_health : int; (* Health.level_rank at end of run: 0 = full *)
  (* on-stack replacement (Config.Osr).  All zero with OSR off. *)
  deopts : int; (* mid-trace deoptimizations taken *)
  deopt_residue_blocks : int;
      (* trace positions abandoned past the deopt points, summed *)
  osr_promotions : int; (* hot loops promoted mid-iteration *)
  osr_entries : int; (* promoted traces entered on their armed back-edge *)
  (* the compiled micro-IR tier (Config.Tier).  All zero with tier off. *)
  traces_compiled : int; (* promotions to the compiled tier *)
  tier_demotions : int; (* compiled slots lost under compile_budget *)
  compiled_entries : int; (* trace entries that ran on the compiled tier *)
  mi_positions : int; (* trace positions followed on the compiled tier *)
  mi_ops : int; (* micro-ops those positions dispatched *)
  mi_fused : int; (* superinstructions among them *)
  mi_src_instrs : int;
      (* source bytecode instructions the same positions would have
         dispatched under Backend_trace — the baseline of the
         dispatch-cost reduction *)
  wall_seconds : float;
}

let zero =
  {
    instructions = 0;
    block_dispatches = 0;
    trace_dispatches = 0;
    traces_entered = 0;
    traces_completed = 0;
    completed_blocks = 0;
    partial_blocks = 0;
    completed_instrs = 0;
    partial_instrs = 0;
    signals = 0;
    traces_constructed = 0;
    traces_replaced = 0;
    traces_live = 0;
    static_traces = 0;
    static_blocks = 0;
    bcg_nodes = 0;
    bcg_edges = 0;
    ic_predictions = 0;
    chained_entries = 0;
    guards_checked = 0;
    guards_elided = 0;
    guards_pruned = 0;
    invariant_violations = 0;
    faults_injected = 0;
    traces_quarantined = 0;
    traces_evicted = 0;
    traces_blacklisted = 0;
    failed_installs = 0;
    healed_nodes = 0;
    health_demotions = 0;
    health_promotions = 0;
    final_health = 0;
    deopts = 0;
    deopt_residue_blocks = 0;
    osr_promotions = 0;
    osr_entries = 0;
    traces_compiled = 0;
    tier_demotions = 0;
    compiled_entries = 0;
    mi_positions = 0;
    mi_ops = 0;
    mi_fused = 0;
    mi_src_instrs = 0;
    wall_seconds = 0.0;
  }

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* All derived values of the evaluation, computed in one place so the
   tables, the pretty-printer and the exporters cannot drift apart.
   Field names deliberately shadow the projection functions below (value
   and field namespaces are distinct). *)
type derived = {
  total_dispatches : int;
      (* blocks dispatched outside traces plus one dispatch per trace
         entry — the trace-dispatch model's count *)
  trace_events : int; (* signals + traces constructed *)
  avg_trace_length : float;
      (* paper: completed static blocks / distinct completed traces *)
  dynamic_trace_length : float; (* completion-event-weighted length *)
  coverage_completed : float;
  coverage_total : float;
      (* coverage counting partial executions too (the paper's 90.7% vs.
         87.1% distinction) *)
  completion_rate : float;
  dispatches_per_signal : float;
  trace_event_interval : float;
  linking_rate : float;
      (* trace entries chaining directly from another trace's
         completion: the dispatch-level analogue of Dynamo linking *)
  dispatch_reduction : float;
      (* block-model dispatches each trace-model dispatch replaces *)
  quarantine_rate : float;
      (* condemnations per constructed trace: how much of the built
         population chaos claimed *)
  eviction_rate : float; (* capacity evictions per constructed trace *)
  guard_elision_rate : float;
      (* fraction of in-trace guard positions elided by proof:
         elided / (checked + elided) *)
  guards_per_kinstr : float;
      (* guards actually checked per 1000 executed instructions — the
         dynamic cost pruning attacks *)
  deopt_rate : float;
      (* OSR deoptimizations per trace entry: how often a followed trace
         was abandoned mid-flight instead of completing or side-exiting
         at its natural end *)
  deopt_residue : float;
      (* average trace positions abandoned past the deopt point — the
         work a non-OSR side exit would have re-dispatched *)
  mi_ops_per_position : float;
      (* micro-ops dispatched per followed trace position on the
         compiled tier *)
  mi_src_per_position : float;
      (* source instructions per position — what Backend_trace would
         have dispatched for the same positions *)
  mi_dispatch_reduction : float;
      (* 1 - mi_ops/mi_src_instrs: the fraction of per-position dispatch
         work the lowered body removes (folding, DCE, fusion) *)
  mi_fused_share : float;
      (* fraction of dispatched micro-ops that are superinstructions *)
}

let derived t : derived =
  let total_dispatches = t.block_dispatches + t.trace_dispatches in
  let trace_events = t.signals + t.traces_constructed in
  let block_model =
    t.block_dispatches + t.completed_blocks + t.partial_blocks
  in
  {
    total_dispatches;
    trace_events;
    avg_trace_length = ratio t.static_blocks t.static_traces;
    dynamic_trace_length = ratio t.completed_blocks t.traces_completed;
    coverage_completed = ratio t.completed_instrs t.instructions;
    coverage_total =
      ratio (t.completed_instrs + t.partial_instrs) t.instructions;
    completion_rate = ratio t.traces_completed t.traces_entered;
    dispatches_per_signal = ratio total_dispatches t.signals;
    trace_event_interval = ratio total_dispatches trace_events;
    linking_rate = ratio t.chained_entries t.traces_entered;
    dispatch_reduction =
      (if total_dispatches = 0 then 1.0
       else ratio block_model total_dispatches);
    quarantine_rate = ratio t.traces_quarantined t.traces_constructed;
    eviction_rate = ratio t.traces_evicted t.traces_constructed;
    guard_elision_rate = ratio t.guards_elided (t.guards_checked + t.guards_elided);
    guards_per_kinstr = 1000.0 *. ratio t.guards_checked t.instructions;
    deopt_rate = ratio t.deopts t.traces_entered;
    deopt_residue = ratio t.deopt_residue_blocks t.deopts;
    mi_ops_per_position = ratio t.mi_ops t.mi_positions;
    mi_src_per_position = ratio t.mi_src_instrs t.mi_positions;
    mi_dispatch_reduction =
      (if t.mi_src_instrs = 0 then 0.0
       else 1.0 -. ratio t.mi_ops t.mi_src_instrs);
    mi_fused_share = ratio t.mi_fused t.mi_ops;
  }

(* Projections, kept for call sites that want a single value. *)
let total_dispatches t = (derived t).total_dispatches

let trace_events t = (derived t).trace_events

let avg_trace_length t = (derived t).avg_trace_length

let dynamic_trace_length t = (derived t).dynamic_trace_length

let coverage_completed t = (derived t).coverage_completed

let coverage_total t = (derived t).coverage_total

let completion_rate t = (derived t).completion_rate

let dispatches_per_signal t = (derived t).dispatches_per_signal

let trace_event_interval t = (derived t).trace_event_interval

let linking_rate t = (derived t).linking_rate

let dispatch_reduction t = (derived t).dispatch_reduction

let quarantine_rate t = (derived t).quarantine_rate

let eviction_rate t = (derived t).eviction_rate

let guard_elision_rate t = (derived t).guard_elision_rate

let guards_per_kinstr t = (derived t).guards_per_kinstr

let deopt_rate t = (derived t).deopt_rate

let deopt_residue t = (derived t).deopt_residue

let mi_ops_per_position t = (derived t).mi_ops_per_position

let mi_src_per_position t = (derived t).mi_src_per_position

let mi_dispatch_reduction t = (derived t).mi_dispatch_reduction

let mi_fused_share t = (derived t).mi_fused_share

let pp ppf t =
  let d = derived t in
  Format.fprintf ppf
    "@[<v>instructions        %d@,\
     block dispatches    %d@,\
     trace dispatches    %d@,\
     entered/completed   %d/%d (%.2f%%)@,\
     avg trace length    %.2f blocks@,\
     coverage completed  %.1f%%@,\
     coverage total      %.1f%%@,\
     signals             %d@,\
     traces constructed  %d (replaced %d, live %d)@,\
     kdisp/signal        %.1f@,\
     kdisp/trace event   %.1f@,\
     linking rate        %.1f%%@,\
     bcg                 %d nodes, %d edges@]"
    t.instructions t.block_dispatches t.trace_dispatches t.traces_entered
    t.traces_completed
    (100.0 *. d.completion_rate)
    d.avg_trace_length
    (100.0 *. d.coverage_completed)
    (100.0 *. d.coverage_total)
    t.signals t.traces_constructed t.traces_replaced t.traces_live
    (d.dispatches_per_signal /. 1000.0)
    (d.trace_event_interval /. 1000.0)
    (100.0 *. d.linking_rate)
    t.bcg_nodes t.bcg_edges;
  (* guard accounting appears only once traces actually dispatched with
     guard counting on, so older renderings are unchanged *)
  if t.guards_checked + t.guards_elided > 0 then
    Format.fprintf ppf
      "@,\
       @[<v>guards checked      %d (%.2f/kinstr)@,\
       guards elided       %d (%.1f%% of positions, %d pruned statically)@]"
      t.guards_checked d.guards_per_kinstr t.guards_elided
      (100.0 *. d.guard_elision_rate)
      t.guards_pruned;
  (* OSR accounting appears only when on-stack replacement actually
     fired, so a run with OSR off renders unchanged *)
  if t.deopts > 0 || t.osr_promotions > 0 then
    Format.fprintf ppf
      "@,\
       @[<v>deopts              %d (%.2f%% of entries, avg residue %.1f blocks)@,\
       osr promotions      %d (%d armed entries taken)@]"
      t.deopts
      (100.0 *. d.deopt_rate)
      d.deopt_residue t.osr_promotions t.osr_entries;
  (* compiled-tier accounting appears only when the tier actually
     dispatched something, so a tier-off run renders unchanged *)
  if t.mi_positions > 0 || t.traces_compiled > 0 then
    Format.fprintf ppf
      "@,\
       @[<v>traces compiled     %d (%d demoted, %d compiled entries)@,\
       micro-IR dispatch   %.2f ops/position vs %.2f instrs \
       (%.1f%% reduction, %.1f%% fused)@]"
      t.traces_compiled t.tier_demotions t.compiled_entries
      d.mi_ops_per_position d.mi_src_per_position
      (100.0 *. d.mi_dispatch_reduction)
      (100.0 *. d.mi_fused_share);
  (* the resilience line only appears when something resilience-related
     happened, so a healthy run's rendering is unchanged *)
  if
    t.invariant_violations > 0 || t.faults_injected > 0
    || t.traces_quarantined > 0 || t.traces_evicted > 0
    || t.failed_installs > 0 || t.healed_nodes > 0 || t.health_demotions > 0
    || t.final_health > 0
  then
    Format.fprintf ppf
      "@,\
       @[<v>violations          %d (faults injected %d)@,\
       quarantined         %d (blacklisted %d, healed nodes %d)@,\
       evicted             %d (failed installs %d)@,\
       health              %d demotions, %d promotions, final level %d@]"
      t.invariant_violations t.faults_injected t.traces_quarantined
      t.traces_blacklisted t.healed_nodes t.traces_evicted t.failed_installs
      t.health_demotions t.health_promotions t.final_health
