module Diag = Analysis.Diag

(* Invariant checks over the BCG and the trace cache.  Each check states a
   property the design guarantees by construction, so a finding is a bug —
   these run under Config.debug_checks at trace-construction and decay
   boundaries, and from `repro_cli lint` after a profiled run. *)

let node_loc (n : Bcg.node) = Diag.Node_loc { x = n.Bcg.n_x; y = n.Bcg.n_y }

let err ?context ~code ~loc fmt =
  Format.kasprintf
    (fun message -> Diag.make ?context ~code ~severity:Diag.Error ~loc message)
    fmt

let check_node ?context (bcg : Bcg.t) (n : Bcg.node) =
  let config = bcg.Bcg.config in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let loc = node_loc n in
  (* TL204: 16-bit saturating counters; dead edges are pruned at decay *)
  List.iter
    (fun (e : Bcg.edge) ->
      if e.Bcg.weight < 1 || e.Bcg.weight > Config.counter_max config then
        add
          (err ?context ~code:"TL204" ~loc
             "edge to %d has weight %d outside [1, %d]" e.Bcg.e_z e.Bcg.weight
             (Config.counter_max config)))
    n.Bcg.edges;
  (* TL205: the inline cache is a live maximal-weight edge *)
  (match (n.Bcg.best, n.Bcg.edges) with
  | None, [] -> ()
  | None, _ :: _ -> add (err ?context ~code:"TL205" ~loc "edges but no best")
  | Some b, edges ->
      if not (List.memq b edges) then
        add
          (err ?context ~code:"TL205" ~loc
             "best edge (to %d) is not among the node's edges" b.Bcg.e_z)
      else
        let max_w =
          List.fold_left (fun acc (e : Bcg.edge) -> max acc e.Bcg.weight) 0
            edges
        in
        if b.Bcg.weight < max_w then
          add
            (err ?context ~code:"TL205" ~loc
               "best edge (to %d, weight %d) is lighter than the heaviest \
                edge (weight %d)"
               b.Bcg.e_z b.Bcg.weight max_w));
  (* TL206: decay and start-state bookkeeping *)
  if n.Bcg.since_decay < 0 || n.Bcg.since_decay >= Config.decay_period config
  then
    add
      (err ?context ~code:"TL206" ~loc "since_decay %d outside [0, %d)"
         n.Bcg.since_decay (Config.decay_period config));
  if n.Bcg.delay_left < 0 || n.Bcg.delay_left > Config.start_state_delay config
  then
    add
      (err ?context ~code:"TL206" ~loc "delay_left %d outside [0, %d]"
         n.Bcg.delay_left
         (Config.start_state_delay config));
  if n.Bcg.delay_left > 0 <> (n.Bcg.state = State.Newly_created) then
    add
      (err ?context ~code:"TL206" ~loc
         "delay_left %d inconsistent with state %s" n.Bcg.delay_left
         (State.to_string n.Bcg.state));
  (* TL208: edge/pred adjacency symmetry *)
  List.iter
    (fun (e : Bcg.edge) ->
      if not (List.memq n e.Bcg.e_target.Bcg.preds) then
        add
          (err ?context ~code:"TL208" ~loc
             "edge to %d but the target does not list this node as a \
              predecessor"
             e.Bcg.e_z))
    n.Bcg.edges;
  List.iter
    (fun (p : Bcg.node) ->
      if Bcg.find_edge p n.Bcg.n_y = None then
        add
          (err ?context ~code:"TL208" ~loc:(node_loc p)
             "listed as a predecessor of N(%d->%d) but has no edge to %d"
             n.Bcg.n_x n.Bcg.n_y n.Bcg.n_y))
    n.Bcg.preds;
  List.rev !diags

let check_bcg ?context (bcg : Bcg.t) =
  let diags = ref [] in
  Bcg.iter_nodes bcg (fun n -> diags := check_node ?context bcg n :: !diags);
  List.concat (List.rev !diags)

let check_trace ?context ?bcg ?layout (config : Config.t) (tr : Trace.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let loc = Diag.Trace_loc { trace_id = tr.Trace.id } in
  (* TL210 / TL211: the trace's block sequence and per-block instruction
     counts agree with the program layout — the checks that catch a
     corrupted (or injected-fault) trace body *)
  (match layout with
  | None -> ()
  | Some (layout : Cfg.Layout.t) ->
      let n_blocks = layout.Cfg.Layout.n_blocks in
      if tr.Trace.first < 0 || tr.Trace.first >= n_blocks then
        add
          (err ?context ~code:"TL210" ~loc "entry context %d outside [0, %d)"
             tr.Trace.first n_blocks);
      Array.iteri
        (fun i b ->
          if b < 0 || b >= n_blocks then
            add
              (err ?context ~code:"TL210" ~loc
                 "block %d is gid %d, outside [0, %d)" i b n_blocks)
          else if
            i < Array.length tr.Trace.instr_len
            && tr.Trace.instr_len.(i) <> layout.Cfg.Layout.instr_len.(b)
          then
            add
              (err ?context ~code:"TL211" ~loc
                 "block %d (gid %d) records %d instructions but the layout \
                  has %d"
                 i b
                 tr.Trace.instr_len.(i)
                 layout.Cfg.Layout.instr_len.(b)))
        tr.Trace.blocks);
  (* TL201: the greedy cutter only commits extensions keeping the product
     at or above the threshold, and correlations never exceed 1.  OSR
     promotion deliberately installs ahead of correlation maturity, so a
     promoted trace only answers for the upper bound. *)
  if
    (tr.Trace.prob < Config.threshold config && not tr.Trace.promoted)
    || tr.Trace.prob > 1.0
  then
    add
      (err ?context ~code:"TL201" ~loc
         "completion probability %.6f outside [%.2f, 1]" tr.Trace.prob
         (Config.threshold config));
  (* TL209: the cutter respects the configured length bounds *)
  let n = Trace.n_blocks tr in
  if n < Config.min_trace_blocks config || n > Config.max_trace_blocks config
  then
    add
      (err ?context ~code:"TL209" ~loc "%d blocks outside [%d, %d]" n
         (Config.min_trace_blocks config)
         (Config.max_trace_blocks config));
  (* TL203: a transition can appear twice (the single loop unrolling) but
     never three times *)
  let transitions = Hashtbl.create 16 in
  let prev = ref tr.Trace.first in
  Array.iter
    (fun b ->
      let k = (!prev, b) in
      Hashtbl.replace transitions k
        (1 + Option.value ~default:0 (Hashtbl.find_opt transitions k));
      prev := b)
    tr.Trace.blocks;
  Hashtbl.iter
    (fun (x, y) count ->
      if count > 2 then
        add
          (err ?context ~code:"TL203" ~loc
             "transition (%d->%d) appears %d times: terminal loop unrolled \
              more than once"
             x y count))
    transitions;
  (* TL207: along the trace, every still-live correlation is a probability,
     so the prefix completion products are monotone non-increasing.
     Decayed-away nodes and edges are skipped — absence is not a bug. *)
  (match bcg with
  | None -> ()
  | Some bcg ->
      let product = ref 1.0 in
      let prev2 = ref tr.Trace.first in
      Array.iteri
        (fun i b ->
          if i + 1 < Array.length tr.Trace.blocks then begin
            let next = tr.Trace.blocks.(i + 1) in
            (match Bcg.find_node bcg ~x:!prev2 ~y:b with
            | Some node -> (
                match Bcg.find_edge node next with
                | Some edge ->
                    let c = Bcg.correlation node edge in
                    let p' = !product *. c in
                    if c < 0.0 || c > 1.0 || p' > !product +. 1e-12 then
                      add
                        (err ?context ~code:"TL207" ~loc
                           "correlation %.6f at step %d (N(%d->%d) -> %d) \
                            breaks monotone completion probability"
                           c i !prev2 b next)
                    else product := p'
                | None -> ())
            | None -> ());
            prev2 := b
          end)
        tr.Trace.blocks)
  ;
  List.rev !diags

let check_cache ?context ?bcg ?layout (config : Config.t)
    (cache : Trace_cache.t) =
  let diags = ref [] in
  (* TL202: the binding key is the trace's own entry transition *)
  Trace_cache.iter_entries cache (fun ~first ~head tr ->
      let f, h = Trace.entry_key tr in
      if f <> first || h <> head then
        diags :=
          [
            err ?context ~code:"TL202"
              ~loc:(Diag.Trace_loc { trace_id = tr.Trace.id })
              "bound under entry (%d,%d) but its own entry key is (%d,%d)"
              first head f h;
          ]
          :: !diags);
  Trace_cache.iter cache (fun tr ->
      diags := check_trace ?context ?bcg ?layout config tr :: !diags);
  List.concat (List.rev !diags)

let check_all ?context ?layout (config : Config.t) ~bcg ~cache =
  check_bcg ?context bcg @ check_cache ?context ~bcg ?layout config cache
