(* Named counters and gauges with periodic snapshotting.

   Counters are owned mutable cells (hot-path increments touch nothing
   else); gauges are closures polled only when a snapshot is taken.  The
   tick clock is the engine's dispatch count, so snapshots form a
   phase-analysis time series over dispatches. *)

type counter = { c_name : string; mutable c_value : int }

type source = Counter of counter | Gauge of (unit -> int)

type snapshot = { at : int; values : (string * int) array }

type t = {
  mutable entries : (string * source) list; (* reverse registration order *)
  mutable period : int;
  mutable ticks : int;
  mutable until_snapshot : int;
  mutable snaps : snapshot list; (* reverse chronological *)
  mutable callbacks : (snapshot -> unit) list; (* reverse registration *)
}

let create ?(period = 0) () =
  if period < 0 then invalid_arg "Metrics.create: negative period";
  {
    entries = [];
    period;
    ticks = 0;
    until_snapshot = period;
    snaps = [];
    callbacks = [];
  }

let period t = t.period

let set_period t p =
  if p < 0 then invalid_arg "Metrics.set_period: negative period";
  t.period <- p;
  t.until_snapshot <- p

let find t name = List.assoc_opt name t.entries

let counter t name =
  match find t name with
  | Some (Counter c) -> c
  | Some (Gauge _) ->
      invalid_arg ("Metrics.counter: " ^ name ^ " is a gauge")
  | None ->
      let c = { c_name = name; c_value = 0 } in
      t.entries <- (name, Counter c) :: t.entries;
      c

let incr ?(by = 1) c = c.c_value <- c.c_value + by

let counter_value c = c.c_value

let gauge t name f =
  match find t name with
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " already registered")
  | None -> t.entries <- (name, Gauge f) :: t.entries

let read_source = function Counter c -> c.c_value | Gauge f -> f ()

let read t name = Option.map read_source (find t name)

let names t = List.rev_map fst t.entries

let ticks t = t.ticks

let take t =
  let values =
    List.rev_map (fun (name, src) -> (name, read_source src)) t.entries
  in
  let s = { at = t.ticks; values = Array.of_list values } in
  t.snaps <- s :: t.snaps;
  List.iter (fun f -> f s) (List.rev t.callbacks);
  s

let force_snapshot t = take t

let tick t =
  t.ticks <- t.ticks + 1;
  if t.period > 0 then begin
    t.until_snapshot <- t.until_snapshot - 1;
    if t.until_snapshot <= 0 then begin
      t.until_snapshot <- t.period;
      ignore (take t)
    end
  end

let snapshots t = List.rev t.snaps

let on_snapshot t f = t.callbacks <- f :: t.callbacks

let counter_name c = c.c_name
