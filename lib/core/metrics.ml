(* Named counters, gauges and histograms with periodic snapshotting.

   Counters are owned mutable cells (hot-path increments touch nothing
   else); gauges are closures polled only when a snapshot is taken.
   Histograms use fixed power-of-two buckets so recording is O(1): one
   bit-length loop, one array bump.  The tick clock is the engine's
   dispatch count, so snapshots form a phase-analysis time series over
   dispatches. *)

type counter = { c_name : string; mutable c_value : int }

type histogram = {
  h_name : string;
  h_buckets : int array;
      (* bucket 0 counts observations <= 0; bucket i (0 < i < last)
         counts [2^(i-1), 2^i - 1]; the last bucket is the overflow
         bucket and is unbounded above *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type source =
  | Counter of counter
  | Gauge of (unit -> int)
  | Hist of histogram

type snapshot = { at : int; values : (string * int) array }

type t = {
  mutable entries : (string * source) list; (* reverse registration order *)
  mutable period : int;
  mutable ticks : int;
  mutable until_snapshot : int;
  mutable snaps : snapshot list; (* reverse chronological *)
  mutable callbacks : (snapshot -> unit) list; (* reverse registration *)
}

let create ?(period = 0) () =
  if period < 0 then invalid_arg "Metrics.create: negative period";
  {
    entries = [];
    period;
    ticks = 0;
    until_snapshot = period;
    snaps = [];
    callbacks = [];
  }

let period t = t.period

let find t name = List.assoc_opt name t.entries

let counter t name =
  match find t name with
  | Some (Counter c) -> c
  | Some (Gauge _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is a gauge")
  | Some (Hist _) ->
      invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram")
  | None ->
      let c = { c_name = name; c_value = 0 } in
      t.entries <- (name, Counter c) :: t.entries;
      c

let incr ?(by = 1) c = c.c_value <- c.c_value + by

let counter_value c = c.c_value

let gauge t name f =
  match find t name with
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " already registered")
  | None -> t.entries <- (name, Gauge f) :: t.entries

(* histograms *)

let default_buckets = 16

let histogram t ?(buckets = default_buckets) name =
  match find t name with
  | Some (Hist h) -> h
  | Some _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
      if buckets < 2 || buckets > 62 then
        invalid_arg "Metrics.histogram: buckets must be in [2, 62]";
      let h =
        {
          h_name = name;
          h_buckets = Array.make buckets 0;
          h_count = 0;
          h_sum = 0;
          h_min = max_int;
          h_max = 0;
        }
      in
      t.entries <- (name, Hist h) :: t.entries;
      h

let bucket_index h v =
  if v <= 0 then 0
  else begin
    (* bit length of v: 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... *)
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    min !b (Array.length h.h_buckets - 1)
  end

let record h v =
  let v = if v < 0 then 0 else v in
  let i = bucket_index h v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_name h = h.h_name

let hist_count h = h.h_count

let hist_sum h = h.h_sum

let hist_min h = if h.h_count = 0 then 0 else h.h_min

let hist_max h = h.h_max

let hist_mean h =
  if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count

let n_buckets h = Array.length h.h_buckets

let bucket_count h i = h.h_buckets.(i)

let bucket_bounds h i =
  let n = Array.length h.h_buckets in
  if i < 0 || i >= n then invalid_arg "Metrics.bucket_bounds: out of range";
  if i = 0 then (0, 0)
  else if i = n - 1 then (1 lsl (i - 1), max_int)
  else (1 lsl (i - 1), (1 lsl i) - 1)

let percentile h p =
  if h.h_count = 0 then 0
  else if p <= 0.0 then hist_min h
  else if p >= 100.0 then h.h_max
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let n = Array.length h.h_buckets in
    let cum = ref 0 and i = ref 0 in
    while !i < n - 1 && !cum + h.h_buckets.(!i) < rank do
      cum := !cum + h.h_buckets.(!i);
      i := !i + 1
    done;
    (* report the bucket's upper edge, clamped to the observed range so
       a single-observation histogram answers exactly *)
    let _, hi = bucket_bounds h !i in
    let hi = if hi > h.h_max then h.h_max else hi in
    if hi < hist_min h then hist_min h else hi
  end

(* A histogram flattens into several snapshot fields; counters and
   gauges stay one field each. *)
let flatten_source name = function
  | Counter c -> [ (name, c.c_value) ]
  | Gauge f -> [ (name, f ()) ]
  | Hist h ->
      [
        (name ^ ".count", h.h_count);
        (name ^ ".sum", h.h_sum);
        (name ^ ".p50", percentile h 50.0);
        (name ^ ".p90", percentile h 90.0);
        (name ^ ".p99", percentile h 99.0);
        (name ^ ".max", h.h_max);
      ]

let read_source = function
  | Counter c -> c.c_value
  | Gauge f -> f ()
  | Hist h -> h.h_count

let read t name = Option.map read_source (find t name)

let names t = List.rev_map fst t.entries

let ticks t = t.ticks

let take t =
  let values =
    List.concat_map
      (fun (name, src) -> flatten_source name src)
      (List.rev t.entries)
  in
  let s = { at = t.ticks; values = Array.of_list values } in
  t.snaps <- s :: t.snaps;
  List.iter (fun f -> f s) (List.rev t.callbacks);
  s

let force_snapshot t = take t

let set_period t p =
  if p < 0 then invalid_arg "Metrics.set_period: negative period";
  (* A countdown in progress means ticks have accumulated toward a
     snapshot that the restart below would silently drop; emit it at the
     change point so the series stays gap-free across the boundary. *)
  if t.period > 0 && t.until_snapshot < t.period then ignore (take t);
  t.period <- p;
  t.until_snapshot <- p

let tick t =
  t.ticks <- t.ticks + 1;
  if t.period > 0 then begin
    t.until_snapshot <- t.until_snapshot - 1;
    if t.until_snapshot <= 0 then begin
      t.until_snapshot <- t.period;
      ignore (take t)
    end
  end

let snapshots t = List.rev t.snaps

let on_snapshot t f = t.callbacks <- f :: t.callbacks

let counter_name c = c.c_name
