(* Tier-aware trace dispatch (Config.Tier): Backend_trace's dispatch
   skeleton with a compiled tier layered on the cache hits.

   At each trace entry the tier cost model runs (Tier.maybe_compile):
   a trace hot enough — its entry's use count crossed [compile_after] —
   is lowered to micro-IR, demoting the coldest compiled trace first
   when the [compile_budget] is full.  Entering a trace that holds a
   lowered body sets the context's [active_lowered], and every position
   followed while it is set is accounted as the micro-ops the lowered
   body dispatches there instead of the source instructions
   Backend_trace would have — superinstructions counted apart, the
   baseline kept alongside.

   Like every backend the tier is a pure observational overlay: the VM
   executes the same bytecode whichever tier a trace is on, so results
   stay bit-identical with the tier on or off; what changes is the
   dispatch-cost model the run is priced under. *)

let name = "microir"

let describe =
  "trace-cache dispatch with hot traces compiled to a micro-IR tier"

let enter (ctx : Backend.ctx) (tr : Trace.t) g =
  (* the lookup that produced [tr] just heated its entry, so the cost
     model sees the use count including this dispatch *)
  let compiled, demoted =
    Tier.maybe_compile ctx.Backend.config ctx.Backend.layout ctx.Backend.cache
      ~events:ctx.Backend.events tr
  in
  ctx.Backend.traces_compiled <- ctx.Backend.traces_compiled + compiled;
  ctx.Backend.tier_demotions <- ctx.Backend.tier_demotions + demoted;
  (match tr.Trace.lowered with
  | Some _ as lowered ->
      ctx.Backend.compiled_entries <- ctx.Backend.compiled_entries + 1;
      ctx.Backend.active_lowered <- lowered
  | None -> ctx.Backend.active_lowered <- None);
  (* the entry position (0) is matched by the lookup itself, before
     Backend.follow sees any position; account it here.  A single-block
     trace completes inside [enter], which clears [active_lowered]. *)
  Backend.account_lowered ctx 0;
  Backend_trace.enter ctx tr g

let step (ctx : Backend.ctx) g = Backend_trace.step_with ~enter ctx g

let poll_osr = Backend_trace.poll_osr

let deopt_resume = Backend_trace.deopt_resume

let on_block ctx g = Backend.observe ~step ~deopt_resume ctx g

let stats_into (ctx : Backend.ctx) (s : Stats.t) =
  {
    (Backend_trace.stats_into ctx s) with
    Stats.traces_compiled = ctx.Backend.traces_compiled;
    tier_demotions = ctx.Backend.tier_demotions;
    compiled_entries = ctx.Backend.compiled_entries;
    mi_positions = ctx.Backend.mi_positions;
    mi_ops = ctx.Backend.mi_ops;
    mi_fused = ctx.Backend.mi_fused;
    mi_src_instrs = ctx.Backend.mi_src_instrs;
  }
