(** Pure interpretation — the ladder's last resort
    ([Health.Interp_only]): every block is an ordinary dispatch and not
    even the profiler hook runs.  See {!Backend.S}. *)

include Backend.S
