module Instr = Bytecode.Instr
module Layout = Cfg.Layout
module Block = Cfg.Block

(* The paper's future work (§6): traces are "excellent targets for dynamic
   optimization" because they have a single entry and an expected-to-
   complete straight-line body.  This module implements that step: it
   concatenates a trace's blocks into one instruction sequence and runs
   classic local optimizations that are valid under the single-entry
   assumption —

   - constant folding of integer and float arithmetic;
   - store/load forwarding through locals (a load after a store to the
     same local reuses the stored value);
   - copy-aware dead-store elimination (a store overwritten before any
     load, within the trace, with no intervening call, is dropped);
   - algebraic identities (x+0, x*1, x*0, x&0, ...);
   - dup/pop and push/pop cancellation.

   Branches inside the trace become assertions in a real system; here the
   optimizer treats them as barriers that consume their operands but keep
   their position (the trace exits there if the assertion fails).  Calls
   are full barriers: locals may be observed by re-entry... in this VM
   locals are frame-private, so calls only act as stack barriers, but we
   conservatively also bar store/load forwarding across them to keep the
   model honest about side effects through the heap.

   The result is a measure of the optimization headroom the paper's design
   criterion number four ("optimizable traces") buys. *)

(* Abstract stack values for the simulation. *)
type aval =
  | Const_int of int
  | Const_float of float
  | Opaque of int (* an unknown value with an identity (its def index) *)

type result = {
  original : Instr.t array;
  optimized : Instr.t array;
  folded : int; (* instructions removed by constant folding/identities *)
  forwarded : int; (* loads satisfied by store/load forwarding *)
  dead_stores : int;
  trailing_dead_stores : int;
}

(* The code of a trace: its blocks' instructions concatenated, in order.
   Only same-method, straight-through traces can be concatenated
   textually; traces that cross calls/returns keep those instructions as
   barriers. *)
let trace_code (layout : Layout.t) (tr : Trace.t) : Instr.t array =
  let buf = ref [] in
  Array.iter
    (fun g ->
      let b = Layout.block layout g in
      let m = Layout.method_of_gid layout g in
      for pc = b.Block.start_pc to Block.end_pc b - 1 do
        buf := m.Bytecode.Mthd.code.(pc) :: !buf
      done)
    tr.Trace.blocks;
  Array.of_list (List.rev !buf)

(* One pass of local optimization over straight-line code.  We simulate
   the operand stack; every emitted instruction is tagged with its index
   so forwarding can mark stores as still-needed. *)
let optimize_code ?(live_out = fun _ -> true) ?(covered_from = fun _ -> false)
    (code : Instr.t array) : result =
  let n = Array.length code in
  (* emitted instructions, in reverse.  Each carries a mutable cell so a
     later discovery can rewrite it (dead stores become Pop — same stack
     effect, no local write) and a "kept" flag so pure glue can vanish. *)
  let out : (Instr.t ref * bool ref) list ref = ref [] in
  let emit ins =
    let cell = ref ins in
    let kept = ref true in
    out := (cell, kept) :: !out;
    cell
  in
  let folded = ref 0 in
  let forwarded = ref 0 in
  let dead_stores = ref 0 in
  (* abstract stack *)
  let stack : aval list ref = ref [] in
  let fresh =
    let k = ref 0 in
    fun () ->
      incr k;
      Opaque !k
  in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> fresh () (* stack content from before the trace: opaque *)
  in
  (* local state: value if known, plus the last store instruction's kept
     flag and whether any load has consumed it *)
  let known : (int, aval) Hashtbl.t = Hashtbl.create 16 in
  let last_store : (int, Instr.t ref * bool ref * int) Hashtbl.t =
    Hashtbl.create 16 in
  (* (instruction cell of the store, consumed?, original code index) *)
  let barrier_locals () =
    Hashtbl.reset known;
    Hashtbl.reset last_store
  in
  let barrier_stack () = stack := [] in
  let note_store slot v cell idx =
    (* previous store to this slot never observed? rewrite it to a Pop:
       the pushed operand still leaves the stack, the dead local write
       disappears *)
    (match Hashtbl.find_opt last_store slot with
    | Some (prev_cell, consumed, _) when not !consumed ->
        (match !prev_cell with
        | Instr.Istore _ | Instr.Fstore _ | Instr.Astore _ ->
            prev_cell := Instr.Pop;
            incr dead_stores
        | _ -> ())
    | Some _ | None -> ());
    Hashtbl.replace known slot v;
    Hashtbl.replace last_store slot (cell, ref false, idx)
  in
  let consume_local slot =
    match Hashtbl.find_opt last_store slot with
    | Some (_, consumed, _) -> consumed := true
    | None -> ()
  in
  let emit_push_const ins v =
    ignore (emit ins);
    push v
  in
  (* Fold a binary operation when both operands are known constants AND
     the operand-producing instructions are the two directly preceding
     emissions (the common shape after forwarding): drop them and emit the
     folded constant.  Otherwise emit as-is. *)
  let try_fold_int ins f =
    let b = pop () in
    let a = pop () in
    match (a, b, !out) with
    | Const_int x, Const_int y, (i2, _) :: (i1, _) :: rest
      when (match (!i1, !i2) with
           | Instr.Iconst _, Instr.Iconst _ -> true
           | _ -> false) -> (
        match f x y with
        | Some r ->
            out := rest;
            out := (ref (Instr.Iconst r), ref true) :: !out;
            folded := !folded + 2;
            push (Const_int r)
        | None ->
            ignore (emit ins);
            push (fresh ()))
    | Const_int x, Const_int y, _ -> (
        match f x y with
        | Some _ ->
            (* constants known but producers not adjacent: keep code *)
            ignore (emit ins);
            push (fresh ())
        | None ->
            ignore (emit ins);
            push (fresh ()))
    | _ ->
        ignore (emit ins);
        push (fresh ())
  in
  let try_fold_float ins f =
    let b = pop () in
    let a = pop () in
    match (a, b, !out) with
    | Const_float x, Const_float y, (c2, _) :: (c1, _) :: rest
      when (match (!c1, !c2) with
           | Instr.Fconst _, Instr.Fconst _ -> true
           | _ -> false) ->
        let r = f x y in
        out := rest;
        out := (ref (Instr.Fconst r), ref true) :: !out;
        folded := !folded + 2;
        push (Const_float r)
    | _ ->
        ignore (emit ins);
        push (fresh ())
  in
  for idx = 0 to n - 1 do
    let ins = code.(idx) in
    match ins with
    | Instr.Iconst v -> emit_push_const ins (Const_int v)
    | Instr.Fconst v -> emit_push_const ins (Const_float v)
    | Instr.Aconst_null ->
        ignore (emit ins);
        push (fresh ())
    | Instr.Iload slot | Instr.Fload slot | Instr.Aload slot -> (
        consume_local slot;
        match Hashtbl.find_opt known slot with
        | Some (Const_int v) ->
            (* forward the constant instead of reloading *)
            incr forwarded;
            emit_push_const (Instr.Iconst v) (Const_int v)
        | Some (Const_float v) ->
            incr forwarded;
            emit_push_const (Instr.Fconst v) (Const_float v)
        | Some (Opaque _ as v) ->
            ignore (emit ins);
            push v
        | None ->
            ignore (emit ins);
            push (fresh ()))
    | Instr.Istore slot | Instr.Fstore slot | Instr.Astore slot ->
        let v = pop () in
        let cell = emit ins in
        note_store slot v cell idx
    | Instr.Iinc (slot, d) ->
        (match Hashtbl.find_opt known slot with
        | Some (Const_int v) -> Hashtbl.replace known slot (Const_int (v + d))
        | Some _ | None -> Hashtbl.replace known slot (fresh ()));
        consume_local slot;
        (* an iinc both reads and writes; treat as consuming the previous
           store and being a new, consumed store *)
        ignore (emit ins)
    | Instr.Dup -> (
        match !stack with
        | v :: _ ->
            ignore (emit ins);
            push v
        | [] ->
            ignore (emit ins);
            push (fresh ()))
    | Instr.Pop -> (
        (* push/pop cancellation: if the directly preceding emission is a
           pure push, drop both *)
        match !out with
        | (cell, _) :: rest
          when (match !cell with
               | Instr.Iconst _ | Instr.Fconst _ | Instr.Aconst_null
               | Instr.Dup ->
                   true
               | _ -> false) ->
            out := rest;
            ignore (pop ());
            folded := !folded + 1
        | _ ->
            ignore (pop ());
            ignore (emit ins))
    | Instr.Swap ->
        let a = pop () in
        let b = pop () in
        push a;
        push b;
        ignore (emit ins)
    | Instr.Iadd ->
        try_fold_int ins (fun a b ->
            match (a, b) with x, y -> Some (x + y))
    | Instr.Isub -> try_fold_int ins (fun a b -> Some (a - b))
    | Instr.Imul -> try_fold_int ins (fun a b -> Some (a * b))
    | Instr.Idiv ->
        try_fold_int ins (fun a b -> if b = 0 then None else Some (a / b))
    | Instr.Irem ->
        try_fold_int ins (fun a b -> if b = 0 then None else Some (a mod b))
    | Instr.Iand -> try_fold_int ins (fun a b -> Some (a land b))
    | Instr.Ior -> try_fold_int ins (fun a b -> Some (a lor b))
    | Instr.Ixor -> try_fold_int ins (fun a b -> Some (a lxor b))
    | Instr.Ishl -> try_fold_int ins (fun a b -> Some (a lsl (b land 63)))
    | Instr.Ishr -> try_fold_int ins (fun a b -> Some (a asr (b land 63)))
    | Instr.Iushr -> try_fold_int ins (fun a b -> Some (a lsr (b land 63)))
    | Instr.Ineg -> (
        let a = pop () in
        match (a, !out) with
        | Const_int x, (c1, _) :: rest
          when (match !c1 with Instr.Iconst _ -> true | _ -> false) ->
            out := rest;
            out := (ref (Instr.Iconst (-x)), ref true) :: !out;
            incr folded;
            push (Const_int (-x))
        | _ ->
            ignore (emit ins);
            push (fresh ()))
    | Instr.Fadd -> try_fold_float ins ( +. )
    | Instr.Fsub -> try_fold_float ins ( -. )
    | Instr.Fmul -> try_fold_float ins ( *. )
    | Instr.Fdiv -> try_fold_float ins ( /. )
    | Instr.Fneg ->
        ignore (pop ());
        ignore (emit ins);
        push (fresh ())
    | Instr.F2i | Instr.I2f | Instr.Fcmp | Instr.Arraylength
    | Instr.Instanceof _ ->
        (* unary-ish operators we do not fold *)
        (match ins with
        | Instr.Fcmp ->
            ignore (pop ());
            ignore (pop ())
        | _ -> ignore (pop ()));
        ignore (emit ins);
        push (fresh ())
    | Instr.If_icmp _ ->
        ignore (pop ());
        ignore (pop ());
        ignore (emit ins)
    | Instr.Ifz _ | Instr.Tableswitch _ ->
        ignore (pop ());
        ignore (emit ins)
    | Instr.Goto _ ->
        (* within a trace the fallthrough is linearized; the goto is pure
           dispatch glue and disappears *)
        incr folded
    | Instr.Invokestatic _ | Instr.Invokevirtual _ ->
        (* call barrier: unknown stack effect, clobbers heap knowledge *)
        barrier_stack ();
        barrier_locals ();
        ignore (emit ins)
    | Instr.Return | Instr.Ireturn | Instr.Freturn | Instr.Areturn
    | Instr.Athrow ->
        barrier_stack ();
        barrier_locals ();
        ignore (emit ins)
    | Instr.New _ ->
        ignore (emit ins);
        push (fresh ())
    | Instr.Newarray _ ->
        ignore (pop ());
        ignore (emit ins);
        push (fresh ())
    | Instr.Getfield _ ->
        ignore (pop ());
        ignore (emit ins);
        push (fresh ())
    | Instr.Putfield _ ->
        ignore (pop ());
        ignore (pop ());
        ignore (emit ins)
    | Instr.Iaload | Instr.Faload | Instr.Aaload ->
        ignore (pop ());
        ignore (pop ());
        ignore (emit ins);
        push (fresh ())
    | Instr.Iastore | Instr.Fastore | Instr.Aastore ->
        ignore (pop ());
        ignore (pop ());
        ignore (pop ());
        ignore (emit ins)
    | Instr.Nop -> incr folded (* dropped *)
  done;
  (* Trailing stores: a store never loaded again within the trace survives
     the loop with its consumed flag still false.  Without outside
     knowledge the slot may be read after the trace completes, so those
     stores stay.  A caller holding a liveness result (the method CFG's
     live-out at the trace's final block) can prove a slot dead there and
     license the same store->Pop rewrite.  Barriers reset [last_store], so
     every surviving entry postdates the last call/return — it belongs to
     the final block's method and the liveness answer applies to it.

     The final block's live-out only covers the normal exit.  A store
     whose suffix runs through a handler-covered region can still be
     observed on the exceptional edge: a later trapping instruction in a
     covered block hands the frame — store included — to a same-frame
     handler that the final block's liveness never sees.  [covered_from]
     answers whether any code index at or after the store lies in a
     covered block; such stores are never rewritten. *)
  let trailing_dead_stores = ref 0 in
  Hashtbl.iter
    (fun slot (cell, consumed, sidx) ->
      if (not !consumed) && (not (live_out slot)) && not (covered_from sidx)
      then
        match !cell with
        | Instr.Istore _ | Instr.Fstore _ | Instr.Astore _ ->
            cell := Instr.Pop;
            incr trailing_dead_stores
        | _ -> ())
    last_store;
  (* !out is in reverse emission order; filter then rev_map restores
     program order *)
  let optimized =
    !out
    |> List.filter (fun (_, kept) -> !kept)
    |> List.rev_map (fun (cell, _) -> !cell)
    |> Array.of_list
  in
  { original = code; optimized; folded = !folded; forwarded = !forwarded;
    dead_stores = !dead_stores; trailing_dead_stores = !trailing_dead_stores }

(* Liveness at the seam where a completed trace hands control back to the
   interpreter: the live-out set of the trace's final block in its
   method's CFG.  Exceptional edges are part of the liveness graph, so a
   slot read only by a reachable handler still counts as live. *)
let live_out_of (layout : Layout.t) (tr : Trace.t) : int -> bool =
  let g = Trace.last_block tr in
  let mid = (Layout.method_of_gid layout g).Bytecode.Mthd.id in
  let cfg = Layout.cfg_of_method layout ~method_id:mid in
  let bi = g - layout.Layout.offsets.(mid) in
  let live = Analysis.Liveness.compute cfg in
  let set = live.Analysis.Liveness.live_out.(bi) in
  fun slot -> Analysis.Liveness.Slot_set.mem slot set

(* Exceptional observability of the trace's code positions: for each
   index into [trace_code], whether that index or any later one lies in a
   handler-covered block.  A trailing store at such an index may be read
   by a same-frame handler if a later covered instruction traps, so the
   normal-path liveness license does not apply. *)
let covered_suffix_of (layout : Layout.t) (tr : Trace.t) : int -> bool =
  let live_cache : (int, Analysis.Liveness.t) Hashtbl.t = Hashtbl.create 4 in
  let covered_of g =
    let mid = (Layout.method_of_gid layout g).Bytecode.Mthd.id in
    let live =
      match Hashtbl.find_opt live_cache mid with
      | Some l -> l
      | None ->
          let l =
            Analysis.Liveness.compute
              (Layout.cfg_of_method layout ~method_id:mid)
          in
          Hashtbl.add live_cache mid l;
          l
    in
    let bi = g - layout.Layout.offsets.(mid) in
    live.Analysis.Liveness.covered.(bi)
  in
  let flags =
    Array.concat
      (Array.to_list
         (Array.map
            (fun g -> Array.make (Layout.block_len layout g) (covered_of g))
            tr.Trace.blocks))
  in
  for i = Array.length flags - 2 downto 0 do
    flags.(i) <- flags.(i) || flags.(i + 1)
  done;
  fun idx -> idx >= 0 && idx < Array.length flags && flags.(idx)

let optimize ?live_out ?covered_from (layout : Layout.t) (tr : Trace.t) :
    result =
  let live_out =
    match live_out with Some f -> f | None -> live_out_of layout tr
  in
  let covered_from =
    match covered_from with Some f -> f | None -> covered_suffix_of layout tr
  in
  optimize_code ~live_out ~covered_from (trace_code layout tr)

let saved (r : result) = Array.length r.original - Array.length r.optimized

let savings_ratio (r : result) =
  let n = Array.length r.original in
  if n = 0 then 0.0 else float_of_int (saved r) /. float_of_int n
