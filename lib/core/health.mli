(** The engine's graceful-degradation ladder.

    Three operating levels, in descending capability:

    - {!Full_tracing} — profile every dispatch, build and dispatch
      traces (the normal mode);
    - {!Profiling_only} — profile every dispatch, never build or enter
      traces (the paper's Table-VI configuration, reached after trace
      faults);
    - {!Interp_only} — pure block interpretation, no profiling at all
      (the last resort after profiler-structure faults persist).

    Detected faults — a quarantined trace, a healed BCG node — are
    {e strikes} ({!strike}); [demote_after] strikes without an
    intervening recovery window drop the engine one level.  Every
    dispatch that completes without a detection is a recovery probe
    ({!clean_dispatch}): after [recover_after] consecutive clean
    dispatches the engine climbs one level back up, and at full tracing
    the same window forgives stale strikes, so isolated faults never
    accumulate into a demotion across a long run. *)

type level = Full_tracing | Profiling_only | Interp_only

val level_to_string : level -> string
(** ["full-tracing"] / ["profiling-only"] / ["interp-only"] — the
    stable names the events and the JSONL schema use. *)

val level_rank : level -> int
(** [0] (full) to [2] (interp-only); exported as the [health_level]
    gauge. *)

type transition = Stay | Changed of level * level  (** (from, to) *)

type t

val create : demote_after:int -> recover_after:int -> t
(** Starts at {!Full_tracing}.
    @raise Invalid_argument when either parameter is below 1. *)

val level : t -> level

val is_degraded : t -> bool

val strikes : t -> int
(** Strikes accumulated at the current level since the last demotion or
    forgiveness window. *)

val demotions : t -> int

val promotions : t -> int

val strike : t -> transition
(** Record one detected fault; may demote. *)

val clean_dispatch : t -> transition
(** Record one clean dispatch; may promote.  Costs one branch when the
    engine is healthy and strike-free. *)

val pp : Format.formatter -> t -> unit
