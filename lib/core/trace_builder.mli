(** Trace (re)construction in response to a profiler signal (paper §4.2).

    The three steps of the paper:

    + {e entry points} — backtrack from the signalled node along strongly
      correlated incoming edges (predecessors whose maximally correlated
      successor leads here);
    + {e paths} — from each entry point, follow the path of maximum
      likelihood while branches stay followable, stopping at a weakly
      correlated or newly created branch, a node already on the path
      (a loop, which is processed first and unrolled once), or the walk
      cap;
    + {e cutting} — greedily cut each path into traces whose cumulative
      completion probability stays at or above the threshold, and install
      them (hash-consed). *)

type outcome = {
  new_traces : int;  (** traces actually constructed *)
  reused_traces : int;  (** reconstructions satisfied by hash-consing *)
  entry_points : int;
  pruned_guards : int;
      (** guard positions proved implied across the newly installed
          traces ([Trace_prover.prune] under {!Config.t.prune_guards};
          [0] when pruning is off) *)
}

val no_outcome : outcome

val find_entry_points : Config.t -> Bcg.node -> Bcg.node list
(** Step 1 alone, exposed for inspection and tests. *)

val on_signal :
  ?events:Events.t ->
  ?on_path:(int -> unit) ->
  Config.t ->
  Trace_cache.t ->
  Bcg.signal ->
  outcome
(** React to one profiler signal: rebuild every trace the signalled
    branch can affect.  [events] receives one [Trace_constructed] per
    installed trace (with [reused] marking hash-cons hits); a fresh
    disabled stream is used when omitted.  [on_path] observes the length
    (in transitions) of each maximum-likelihood walk before the
    probability cut — the engine's builder-path histogram hangs off
    it.  Under {!Config.t.prune_guards} every newly installed trace is
    guard-implication pruned, with a [Guards_pruned] event per trace
    that lost at least one guard. *)

val promote :
  ?events:Events.t ->
  ?on_path:(int -> unit) ->
  Config.t ->
  Trace_cache.t ->
  Bcg.t ->
  header:Cfg.Layout.gid ->
  outcome * Trace.t option
(** OSR mid-loop promotion: build the hot loop owning [header] into a
    trace {e now}, rooted at the hottest followable BCG transition
    entering the header, without waiting for a profiler signal.  The
    second component is the installed self-chaining back-edge trace
    (entered at the header on the very next latch→header transition)
    when one exists — [None] when the BCG has no followable transition
    into the header or the probability cut rejected every candidate. *)
