(** Tier-aware trace dispatch ({!Config.Tier}): [Backend_trace]'s
    dispatch skeleton with a compiled micro-IR tier layered on the cache
    hits.  Each trace entry runs the tier cost model
    ([Tier.maybe_compile]); positions followed inside a compiled trace
    are accounted as the lowered body's micro-op dispatches instead of
    source instructions.  A pure observational overlay like every
    backend — results are bit-identical with the tier on or off.  See
    {!Backend.S}. *)

include Backend.S
