(** Proof-carrying traces: translation validation and guard-implication
    pruning over installed traces.

    {b Validation.}  {!validate} optimizes the trace
    ({!Trace_optimizer.optimize}) and checks the result observationally
    equivalent to the original block sequence with {!Analysis.Equiv}
    (TL212–TL216/TL218 on divergence), deriving the trailing dead-store
    license here: a dropped slot must be dead at the trace's normal exit
    {e and} its last store must not be followed by any handler-covered
    code (the exceptional edge would observe it).  The [debug_checks]
    sweep runs {!validate_new} after every invariant pass; [repro_cli
    prove] runs {!check_cache} over every workload as a CI gate.

    {b Pruning.}  {!prune} walks the trace forward with a fact
    environment — constant/interval facts from {!Analysis.Constprop}
    seeded at each block entry, interval refinements mined from each
    guard's recorded outcome, a continuation stack for call/return
    forcing, and the symbolic state itself — and marks guard positions
    whose transition is implied: the previous block provably cannot trap
    and its terminator provably targets the expected block.  Verdicts
    land in [Trace.pruned] for the dispatch loop to elide (they are
    counted as elided, and under [debug_checks] a mismatch on a pruned
    position is reported as a TL217 disproof).  {!check_pruned}
    re-derives the proofs, reporting TL217 for any claim that no longer
    follows. *)

val validate :
  ?context:string -> Cfg.Layout.t -> Trace.t -> Analysis.Diag.t list
(** Translation-validate one trace (and re-check its pruning claims).
    [[]] = proven equivalent.  Structurally unsound bodies (corrupted
    gids — Invariants' TL210/TL211 territory) get a single TL218
    warning instead of a crash.  Traces holding a compiled-tier body
    additionally get {!Tier.check_lowered}'s TL220 re-derivation
    check. *)

val check_cache :
  ?context:string -> Cfg.Layout.t -> Trace_cache.t -> Analysis.Diag.t list
(** {!validate} every trace in the cache — the [prove] gate. *)

val validate_new :
  ?context:string -> Cfg.Layout.t -> Trace_cache.t -> Analysis.Diag.t list
(** {!validate} traces not yet validated this run and mark them, so the
    per-sweep cost under [Config.debug_checks] is one validation per
    installed trace.  Structurally unsound traces are skipped without
    being marked. *)

val prune : Cfg.Layout.t -> Trace.t -> int
(** Derive and store guard-implication verdicts in [Trace.pruned];
    returns the number of pruned positions (0 leaves the trace
    untouched).  Position 0 — the entering transition, matched by the
    cache lookup — is never a candidate. *)

val check_pruned :
  ?context:string -> Cfg.Layout.t -> Trace.t -> Analysis.Diag.t list
(** Re-derive the pruning proofs; every claimed position that no longer
    follows is a TL217 error. *)

val dead_out_of : Cfg.Layout.t -> Trace.t -> int -> bool
(** The dead-store license {!validate} passes to {!Analysis.Equiv}:
    slot dead at the final block's normal exit and not exposed to any
    handler-covered suffix. *)

val structurally_sound : Cfg.Layout.t -> Trace.t -> bool
(** Whether the trace's body can be reasoned about at all: gids in
    range, instruction lengths consistent, pruned array well-shaped. *)
