(** Straight-line optimization of traces — the paper's stated next step
    (§6: "measure what further improvement can be achieved by applying
    optimizations to the traces").

    A trace has a single entry and is expected to execute to completion,
    so its concatenated block bodies form one straight-line region.  This
    pass runs the classic local optimizations that the completion
    assumption makes speculative-but-profitable (paper §3.7): constant
    folding and algebraic simplification, store/load forwarding through
    locals, dead-store elimination (sound under the completion assumption;
    a real system would compensate on side exits), push/pop cancellation,
    and removal of intra-trace dispatch glue (gotos, nops).  Calls and
    returns are optimization barriers. *)

type result = {
  original : Bytecode.Instr.t array;
      (** the trace's blocks, concatenated *)
  optimized : Bytecode.Instr.t array;
  folded : int;  (** instructions removed by folding/identities/glue *)
  forwarded : int;  (** loads satisfied from a prior store's value *)
  dead_stores : int;
      (** stores overwritten before any load, within the trace *)
  trailing_dead_stores : int;
      (** stores never loaded again in the trace whose slot [live_out]
          proved dead past the trace's end *)
}

val trace_code : Cfg.Layout.t -> Trace.t -> Bytecode.Instr.t array
(** The trace's instruction sequence. *)

val optimize_code :
  ?live_out:(int -> bool) ->
  ?covered_from:(int -> bool) ->
  Bytecode.Instr.t array ->
  result
(** Optimize any straight-line sequence (exposed for testing).

    [live_out slot] says whether the local slot can still be read after
    the sequence ends; the default answers [true] for every slot, which
    keeps every trailing store.  Supplying a liveness answer (see
    {!live_out_of}) lets the pass also rewrite trailing dead stores —
    stores with no later load inside the sequence {e and} a provably dead
    slot after it — to [Pop].

    [covered_from idx] says whether code index [idx] or any later index
    lies in a handler-covered block; a trailing store there stays even
    when [live_out] proves its slot dead, because a later trap can hand
    the frame to a same-frame handler on the exceptional edge — a path
    the final block's normal-exit liveness never sees.  The default
    answers [false] (no handlers in sight); {!optimize} supplies
    {!covered_suffix_of}. *)

val live_out_of : Cfg.Layout.t -> Trace.t -> int -> bool
(** The liveness justification for trailing dead-store elimination:
    computes {!Analysis.Liveness} over the method of the trace's final
    block and answers membership in that block's live-out set
    (exceptional edges included, so handler-only reads keep a slot
    live). *)

val covered_suffix_of : Cfg.Layout.t -> Trace.t -> int -> bool
(** The exceptional-edge guard for trailing dead-store elimination: for
    each index into {!trace_code}, whether that index or any later one
    belongs to a handler-covered block. *)

val optimize :
  ?live_out:(int -> bool) ->
  ?covered_from:(int -> bool) ->
  Cfg.Layout.t ->
  Trace.t ->
  result
(** Optimizes {!trace_code}.  When [live_out] or [covered_from] is
    omitted it defaults to {!live_out_of} / {!covered_suffix_of} for the
    trace — the analysis-justified behaviour. *)

val saved : result -> int
(** Instructions removed. *)

val savings_ratio : result -> float
(** Fraction of the trace's instructions removed, in [0, 1]. *)
