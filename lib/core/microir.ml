module Instr = Bytecode.Instr
module Layout = Cfg.Layout

(* A flat register-based micro-IR for hot traces (ROADMAP item 2).  The
   stack bytecode of a trace's blocks is converted to straight-line
   register code: every operand-stack push allocates a virtual register
   identified by its (epoch, stack depth) at push time, where the epoch
   increments at every call/return/throw barrier (the operand stack does
   not survive those in a way the converter can see, mirroring
   [Trace_optimizer]'s stack barriers).  Guards — the per-position block
   checks that trace dispatch performs — are carried as first-class IR
   ops, so a fusion pass can combine a block-ending compare with the
   guard it feeds into one superinstruction, and adjacent local-load +
   integer-arithmetic pairs into another.

   The lowering runs three phases:

   1. conversion: abstract-stack walk emitting one micro-op per source
      instruction, with constant folding (trace-local constants plus an
      optional [local_const] oracle fed by [Analysis.Constprop] facts),
      store/load forwarding through locals, and free stack shuffling
      (dup/pop/swap/goto emit nothing — registers make them renames);
   2. dead-register elimination: a backward pass drops pure ops whose
      destination register is never read, and local stores that are
      overwritten unread or proven dead at the trace seam by the
      caller's [store_dead] license ([Analysis.Liveness] live-out, same
      license as [Trace_optimizer]'s trailing dead stores);
   3. fusion: compare+guard and load+arith superinstructions.

   The lowered body is derived state: it is never persisted, and it is
   never the thing that executes — [Vm.Interp] always runs the real
   bytecode and backends only observe (DESIGN.md §10).  The body is what
   the compiled tier *accounts* dispatch against, and what [Trace_prover]
   re-derives to cross-check (TL220). *)

type reg = int

type cval =
  | Cint of int
  | Cfloat of float
  | Cnull

type iop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Ushr

type fop =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type call_target =
  | Static of int (* method id *)
  | Virtual of int (* selector slot *)

type ret_kind =
  | Rvoid
  | Rint
  | Rfloat
  | Rref

type op =
  | Const of { dst : reg; v : cval }
  | Move of { dst : reg; src : reg }
  | Iarith of { op : iop; dst : reg; a : reg; b : reg }
  | Farith of { op : fop; dst : reg; a : reg; b : reg }
  | Ineg of { dst : reg; src : reg }
  | Fneg of { dst : reg; src : reg }
  | F2i of { dst : reg; src : reg }
  | I2f of { dst : reg; src : reg }
  | Fcmp of { dst : reg; a : reg; b : reg }
  | Load of { dst : reg; slot : int }
  | Store of { slot : int; src : reg }
  | Inc of { slot : int; delta : int }
  | Getfield of { dst : reg; obj : reg; cid : int; slot : int }
  | Putfield of { obj : reg; src : reg; cid : int; slot : int }
  | New_obj of { dst : reg; cid : int }
  | Instance_of of { dst : reg; src : reg; cid : int }
  | New_array of { dst : reg; kind : Instr.array_kind; len : reg }
  | Array_load of { dst : reg; arr : reg; idx : reg; kind : Instr.array_kind }
  | Array_store of { arr : reg; idx : reg; src : reg; kind : Instr.array_kind }
  | Array_len of { dst : reg; src : reg }
  | Branch of { cond : Instr.cond; a : reg; b : reg }
  | Branchz of { cond : Instr.cond; src : reg }
  | Switch of { src : reg }
  | Call of { target : call_target }
  | Ret of ret_kind
  | Throw of { src : reg }
  | Guard of { pos : int; expect : Layout.gid }
  (* superinstructions *)
  | Cmp_guard of {
      cond : Instr.cond;
      a : reg;
      b : reg;
      pos : int;
      expect : Layout.gid;
    }
  | Cmpz_guard of {
      cond : Instr.cond;
      src : reg;
      pos : int;
      expect : Layout.gid;
    }
  | Load_arith of {
      op : iop;
      dst : reg;
      slot : int;
      other : reg;
      load_left : bool;
          (* whether the loaded value is the left operand (a) *)
    }

type body = {
  ops : op array;
  block_start : int array;
      (* ops index where each trace position's segment begins;
         block_start.(0) = 0 *)
  pos_ops : int array; (* micro-ops per position, after DCE and fusion *)
  pos_fused : int array; (* superinstructions per position *)
  pos_src : int array; (* source bytecode instructions per position *)
  reg_origin : (int * int) array; (* (epoch, stack depth) of each register *)
  n_regs : int;
  src_instrs : int;
  folded : int; (* ops never emitted: constants, renames, dispatch glue *)
  dead : int; (* ops removed by dead-register/dead-store elimination *)
  fused : int; (* superinstructions formed *)
}

let n_ops b = Array.length b.ops

let n_positions b = Array.length b.block_start

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let is_fused = function
  | Cmp_guard _ | Cmpz_guard _ | Load_arith _ -> true
  | _ -> false

(* Pure ops are droppable when their destination is never read.  Ops
   that can trap in the real VM (division, heap and array access) are
   kept even though this IR never executes, so the op stream stays an
   honest model of the trace's work. *)
let pure_def = function
  | Const { dst; _ }
  | Move { dst; _ }
  | Iarith { op = Add | Sub | Mul | And | Or | Xor | Shl | Shr | Ushr; dst; _ }
  | Farith { dst; _ }
  | Ineg { dst; _ }
  | Fneg { dst; _ }
  | F2i { dst; _ }
  | I2f { dst; _ }
  | Fcmp { dst; _ }
  | Load { dst; _ } ->
      Some dst
  | _ -> None

let def_of = function
  | Const { dst; _ }
  | Move { dst; _ }
  | Iarith { dst; _ }
  | Farith { dst; _ }
  | Ineg { dst; _ }
  | Fneg { dst; _ }
  | F2i { dst; _ }
  | I2f { dst; _ }
  | Fcmp { dst; _ }
  | Load { dst; _ }
  | Getfield { dst; _ }
  | New_obj { dst; _ }
  | Instance_of { dst; _ }
  | New_array { dst; _ }
  | Array_load { dst; _ }
  | Array_len { dst; _ }
  | Load_arith { dst; _ } ->
      Some dst
  | _ -> None

let uses_of = function
  | Const _ | Load _ | Inc _ | New_obj _ | Call _ | Ret _ | Guard _ -> []
  | Move { src; _ }
  | Ineg { src; _ }
  | Fneg { src; _ }
  | F2i { src; _ }
  | I2f { src; _ }
  | Instance_of { src; _ }
  | Array_len { src; _ }
  | Branchz { src; _ }
  | Switch { src }
  | Throw { src }
  | Cmpz_guard { src; _ } ->
      [ src ]
  | Store { src; _ } -> [ src ]
  | Iarith { a; b; _ }
  | Farith { a; b; _ }
  | Fcmp { a; b; _ }
  | Branch { a; b; _ }
  | Cmp_guard { a; b; _ } ->
      [ a; b ]
  | Getfield { obj; _ } -> [ obj ]
  | Putfield { obj; src; _ } -> [ obj; src ]
  | New_array { len; _ } -> [ len ]
  | Array_load { arr; idx; _ } -> [ arr; idx ]
  | Array_store { arr; idx; src; _ } -> [ arr; idx; src ]
  | Load_arith { other; _ } -> [ other ]

let iop_of_instr = function
  | Instr.Iadd -> Some Add
  | Instr.Isub -> Some Sub
  | Instr.Imul -> Some Mul
  | Instr.Idiv -> Some Div
  | Instr.Irem -> Some Rem
  | Instr.Iand -> Some And
  | Instr.Ior -> Some Or
  | Instr.Ixor -> Some Xor
  | Instr.Ishl -> Some Shl
  | Instr.Ishr -> Some Shr
  | Instr.Iushr -> Some Ushr
  | _ -> None

(* The interpreter's exact integer semantics (shift masking matches
   [Vm.Interp]); [None] when folding would hide a trap. *)
let eval_iop op x y =
  match op with
  | Add -> Some (x + y)
  | Sub -> Some (x - y)
  | Mul -> Some (x * y)
  | Div -> if y = 0 then None else Some (x / y)
  | Rem -> if y = 0 then None else Some (x mod y)
  | And -> Some (x land y)
  | Or -> Some (x lor y)
  | Xor -> Some (x lxor y)
  | Shl -> Some (x lsl (y land 63))
  | Shr -> Some (x asr (y land 63))
  | Ushr -> Some (x lsr (y land 63))

let eval_fop op x y =
  match op with
  | Fadd -> x +. y
  | Fsub -> x -. y
  | Fmul -> x *. y
  | Fdiv -> x /. y

(* An emitted op cell: rewritable ([Store] -> dropped) and killable,
   tagged with the trace position it belongs to. *)
type cell = { mutable op : op; mutable kept : bool; pos : int }

let lower ?(local_const = fun ~pos:_ ~slot:_ -> None)
    ?(store_dead = fun ~pos:_ ~slot:_ -> false)
    (blocks : (Layout.gid * Instr.t array) array) : body =
  let n_pos = Array.length blocks in
  if n_pos = 0 then invalid_arg "Microir.lower: empty trace";
  (* --- phase 1: stack-to-register conversion ------------------------ *)
  let out : cell list ref = ref [] in
  let cur_pos = ref 0 in
  let emit op =
    let c = { op; kept = true; pos = !cur_pos } in
    out := c :: !out;
    c
  in
  let folded = ref 0 in
  let dead = ref 0 in
  (* registers: identity is the (epoch, depth) at allocation *)
  let origins = ref [] in
  let n_regs = ref 0 in
  let epoch = ref 0 in
  let stack : reg list ref = ref [] in
  let fresh () =
    let r = !n_regs in
    incr n_regs;
    origins := (!epoch, List.length !stack) :: !origins;
    r
  in
  let push r = stack := r :: !stack in
  let pop () =
    match !stack with
    | r :: rest ->
        stack := rest;
        r
    | [] ->
        (* stack content from before the trace entry: an opaque incoming
           register at negative depth *)
        let r = !n_regs in
        incr n_regs;
        origins := (!epoch, -1) :: !origins;
        r
  in
  (* constants known per register *)
  let consts : (reg, cval) Hashtbl.t = Hashtbl.create 32 in
  let const_of r = Hashtbl.find_opt consts r in
  (* locals: forwarding register per slot, plus which slots were written
     in this position (so the constprop block-entry oracle stays sound
     for untouched slots mid-block) and the last unconsumed store *)
  let local_reg : (int, reg) Hashtbl.t = Hashtbl.create 16 in
  let written_this_pos : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let oracle_ok = ref true in
  let last_store : (int, cell * bool ref * int) Hashtbl.t =
    Hashtbl.create 16
  in
  let barrier () =
    stack := [];
    incr epoch;
    Hashtbl.reset consts;
    Hashtbl.reset local_reg;
    Hashtbl.reset last_store;
    (* a call may re-enter this frame's method; the block-entry facts no
       longer describe the current point conservatively *)
    oracle_ok := false
  in
  let local_fact ~slot =
    match Hashtbl.find_opt local_reg slot with
    | Some r -> (Some r, const_of r)
    | None ->
        if !oracle_ok && not (Hashtbl.mem written_this_pos slot) then
          (None, local_const ~pos:!cur_pos ~slot)
        else (None, None)
  in
  let consume_local slot =
    match Hashtbl.find_opt last_store slot with
    | Some (_, consumed, _) -> consumed := true
    | None -> ()
  in
  let note_store slot src cell =
    (match Hashtbl.find_opt last_store slot with
    | Some (prev, consumed, _) when not !consumed ->
        (* overwritten before any load: the previous store is dead *)
        prev.kept <- false;
        incr dead
    | Some _ | None -> ());
    Hashtbl.replace last_store slot (cell, ref false, !cur_pos);
    Hashtbl.replace local_reg slot src;
    Hashtbl.replace written_this_pos slot ()
  in
  let push_const v =
    let r = fresh () in
    ignore (emit (Const { dst = r; v }));
    Hashtbl.replace consts r v;
    push r
  in
  let push_folded v =
    incr folded;
    push_const v
  in
  let kind_of_array_instr = function
    | Instr.Iaload | Instr.Iastore -> Instr.Int_array
    | Instr.Faload | Instr.Fastore -> Instr.Float_array
    | _ -> Instr.Ref_array
  in
  let lower_instr ins =
    match ins with
    | Instr.Iconst v -> push_const (Cint v)
    | Instr.Fconst v -> push_const (Cfloat v)
    | Instr.Aconst_null -> push_const Cnull
    | Instr.Iload slot | Instr.Fload slot | Instr.Aload slot -> (
        consume_local slot;
        match local_fact ~slot with
        | Some r, _ ->
            (* store/load forwarding: the stored register is the value *)
            incr folded;
            push r
        | None, Some v ->
            (* constprop proved the slot constant at this point *)
            push_folded v
        | None, None ->
            let r = fresh () in
            ignore (emit (Load { dst = r; slot }));
            Hashtbl.replace local_reg slot r;
            push r)
    | Instr.Istore slot | Instr.Fstore slot | Instr.Astore slot ->
        let src = pop () in
        let c = emit (Store { slot; src }) in
        note_store slot src c
    | Instr.Iinc (slot, delta) ->
        consume_local slot;
        (match Hashtbl.find_opt local_reg slot with
        | Some r -> (
            Hashtbl.remove local_reg slot;
            match const_of r with
            | Some (Cint v) ->
                (* keep the constant view in step with the increment by
                   binding the slot to a fresh folded register *)
                let nr = fresh () in
                Hashtbl.replace consts nr (Cint (v + delta));
                Hashtbl.replace local_reg slot nr
            | _ -> ())
        | None -> ());
        Hashtbl.replace written_this_pos slot ();
        ignore (emit (Inc { slot; delta }))
    | Instr.Dup -> (
        match !stack with
        | r :: _ ->
            incr folded;
            push r
        | [] ->
            let r = pop () in
            push r;
            push r;
            incr folded)
    | Instr.Pop ->
        ignore (pop ());
        incr folded
    | Instr.Swap ->
        let a = pop () in
        let b = pop () in
        push a;
        push b;
        incr folded
    | Instr.Iadd | Instr.Isub | Instr.Imul | Instr.Idiv | Instr.Irem
    | Instr.Iand | Instr.Ior | Instr.Ixor | Instr.Ishl | Instr.Ishr
    | Instr.Iushr -> (
        let op =
          match iop_of_instr ins with Some o -> o | None -> assert false
        in
        let b = pop () in
        let a = pop () in
        match (const_of a, const_of b) with
        | Some (Cint x), Some (Cint y) -> (
            match eval_iop op x y with
            | Some r -> push_folded (Cint r)
            | None ->
                let r = fresh () in
                ignore (emit (Iarith { op; dst = r; a; b }));
                push r)
        | _, Some (Cint 0)
          when op = Add || op = Sub || op = Or || op = Xor || op = Shl
               || op = Shr || op = Ushr ->
            (* algebraic identity: the left operand passes through *)
            incr folded;
            push a
        | _, Some (Cint 1) when op = Mul || op = Div ->
            incr folded;
            push a
        | _ ->
            let r = fresh () in
            ignore (emit (Iarith { op; dst = r; a; b }));
            push r)
    | Instr.Ineg -> (
        let a = pop () in
        match const_of a with
        | Some (Cint x) -> push_folded (Cint (-x))
        | _ ->
            let r = fresh () in
            ignore (emit (Ineg { dst = r; src = a }));
            push r)
    | Instr.Fadd | Instr.Fsub | Instr.Fmul | Instr.Fdiv -> (
        let op =
          match ins with
          | Instr.Fadd -> Fadd
          | Instr.Fsub -> Fsub
          | Instr.Fmul -> Fmul
          | _ -> Fdiv
        in
        let b = pop () in
        let a = pop () in
        match (const_of a, const_of b) with
        | Some (Cfloat x), Some (Cfloat y) ->
            push_folded (Cfloat (eval_fop op x y))
        | _ ->
            let r = fresh () in
            ignore (emit (Farith { op; dst = r; a; b }));
            push r)
    | Instr.Fneg -> (
        let a = pop () in
        match const_of a with
        | Some (Cfloat x) -> push_folded (Cfloat (-.x))
        | _ ->
            let r = fresh () in
            ignore (emit (Fneg { dst = r; src = a }));
            push r)
    | Instr.F2i ->
        let a = pop () in
        let r = fresh () in
        ignore (emit (F2i { dst = r; src = a }));
        push r
    | Instr.I2f ->
        let a = pop () in
        let r = fresh () in
        ignore (emit (I2f { dst = r; src = a }));
        push r
    | Instr.Fcmp -> (
        let b = pop () in
        let a = pop () in
        match (const_of a, const_of b) with
        | Some (Cfloat x), Some (Cfloat y) ->
            push_folded (Cint (compare x y))
        | _ ->
            let r = fresh () in
            ignore (emit (Fcmp { dst = r; a; b }));
            push r)
    | Instr.If_icmp (cond, _) ->
        let b = pop () in
        let a = pop () in
        ignore (emit (Branch { cond; a; b }))
    | Instr.Ifz (cond, _) ->
        let src = pop () in
        ignore (emit (Branchz { cond; src }))
    | Instr.Goto _ ->
        (* linearized: pure dispatch glue *)
        incr folded
    | Instr.Tableswitch _ ->
        let src = pop () in
        ignore (emit (Switch { src }))
    | Instr.Invokestatic mid ->
        ignore (emit (Call { target = Static mid }));
        barrier ()
    | Instr.Invokevirtual sel ->
        ignore (emit (Call { target = Virtual sel }));
        barrier ()
    | Instr.Return ->
        ignore (emit (Ret Rvoid));
        barrier ()
    | Instr.Ireturn ->
        ignore (pop ());
        ignore (emit (Ret Rint));
        barrier ()
    | Instr.Freturn ->
        ignore (pop ());
        ignore (emit (Ret Rfloat));
        barrier ()
    | Instr.Areturn ->
        ignore (pop ());
        ignore (emit (Ret Rref));
        barrier ()
    | Instr.Athrow ->
        let src = pop () in
        ignore (emit (Throw { src }));
        barrier ()
    | Instr.New cid ->
        let r = fresh () in
        ignore (emit (New_obj { dst = r; cid }));
        push r
    | Instr.Getfield (cid, slot) ->
        let obj = pop () in
        let r = fresh () in
        ignore (emit (Getfield { dst = r; obj; cid; slot }));
        push r
    | Instr.Putfield (cid, slot) ->
        let src = pop () in
        let obj = pop () in
        ignore (emit (Putfield { obj; src; cid; slot }))
    | Instr.Instanceof cid ->
        let src = pop () in
        let r = fresh () in
        ignore (emit (Instance_of { dst = r; src; cid }));
        push r
    | Instr.Newarray kind ->
        let len = pop () in
        let r = fresh () in
        ignore (emit (New_array { dst = r; kind; len }));
        push r
    | Instr.Iaload | Instr.Faload | Instr.Aaload ->
        let idx = pop () in
        let arr = pop () in
        let r = fresh () in
        ignore
          (emit
             (Array_load { dst = r; arr; idx; kind = kind_of_array_instr ins }));
        push r
    | Instr.Iastore | Instr.Fastore | Instr.Aastore ->
        let src = pop () in
        let idx = pop () in
        let arr = pop () in
        ignore
          (emit (Array_store { arr; idx; src; kind = kind_of_array_instr ins }))
    | Instr.Arraylength ->
        let a = pop () in
        let r = fresh () in
        ignore (emit (Array_len { dst = r; src = a }));
        push r
    | Instr.Nop -> incr folded
  in
  let src_instrs = ref 0 in
  Array.iteri
    (fun pos (gid, instrs) ->
      cur_pos := pos;
      Hashtbl.reset written_this_pos;
      oracle_ok := true;
      if pos > 0 then ignore (emit (Guard { pos; expect = gid }));
      src_instrs := !src_instrs + Array.length instrs;
      Array.iter lower_instr instrs)
    blocks;
  (* --- phase 2: dead-store and dead-register elimination ------------ *)
  (* trailing stores: never re-read within the trace; removable only
     under the caller's liveness license (dead at the trace seam and not
     observable on an exceptional edge) *)
  Hashtbl.iter
    (fun slot (cell, consumed, pos) ->
      if (not !consumed) && cell.kept && store_dead ~pos ~slot then (
        cell.kept <- false;
        incr dead))
    last_store;
  (* backward pass: a pure op whose destination no kept op reads is dead,
     and killing it can expose its operands' producers *)
  let cells_rev = !out in
  let needed = Array.make (max 1 !n_regs) false in
  List.iter
    (fun c ->
      if c.kept then
        match pure_def c.op with
        | Some dst when not needed.(dst) ->
            c.kept <- false;
            incr dead
        | _ -> List.iter (fun r -> needed.(r) <- true) (uses_of c.op))
    cells_rev;
  let cells = List.rev (List.filter (fun c -> c.kept) cells_rev) in
  (* --- phase 3: superinstruction fusion ----------------------------- *)
  let reads = Array.make (max 1 !n_regs) 0 in
  List.iter
    (fun c -> List.iter (fun r -> reads.(r) <- reads.(r) + 1) (uses_of c.op))
    cells;
  let fused = ref 0 in
  let rec fuse = function
    | ({ op = Branch { cond; a; b }; _ } as c1)
      :: { op = Guard { pos; expect }; _ }
      :: rest ->
        incr fused;
        { c1 with op = Cmp_guard { cond; a; b; pos; expect }; pos } :: fuse rest
    | ({ op = Branchz { cond; src }; _ } as c1)
      :: { op = Guard { pos; expect }; _ }
      :: rest ->
        incr fused;
        { c1 with op = Cmpz_guard { cond; src; pos; expect }; pos }
        :: fuse rest
    | ({ op = Load { dst = r; slot }; pos = p1; _ } as c1)
      :: ({ op = Iarith { op; dst; a; b }; pos = p2; _ } as c2)
      :: rest
      when p1 = p2 && (a = r || b = r) && reads.(r) = 1 && dst <> r ->
        incr fused;
        let load_left = a = r in
        let other = if load_left then b else a in
        ignore c2;
        { c1 with op = Load_arith { op; dst; slot; other; load_left } }
        :: fuse rest
    | c :: rest -> c :: fuse rest
    | [] -> []
  in
  let cells = fuse cells in
  (* --- assemble ------------------------------------------------------ *)
  let ops = Array.of_list (List.map (fun c -> c.op) cells) in
  let poss = Array.of_list (List.map (fun c -> c.pos) cells) in
  let pos_ops = Array.make n_pos 0 in
  let pos_fused = Array.make n_pos 0 in
  let pos_src = Array.map (fun (_, instrs) -> Array.length instrs) blocks in
  Array.iteri
    (fun i p ->
      pos_ops.(p) <- pos_ops.(p) + 1;
      if is_fused ops.(i) then pos_fused.(p) <- pos_fused.(p) + 1)
    poss;
  let block_start = Array.make n_pos (Array.length ops) in
  for i = Array.length ops - 1 downto 0 do
    block_start.(poss.(i)) <- i
  done;
  (* a position whose ops were all folded away starts where the next
     position starts; fix up right-to-left so starts stay monotone *)
  for p = n_pos - 2 downto 0 do
    if block_start.(p) > block_start.(p + 1) then
      block_start.(p) <- block_start.(p + 1)
  done;
  block_start.(0) <- 0;
  {
    ops;
    block_start;
    pos_ops;
    pos_fused;
    pos_src;
    reg_origin = Array.of_list (List.rev !origins);
    n_regs = !n_regs;
    src_instrs = !src_instrs;
    folded = !folded;
    dead = !dead;
    fused = !fused;
  }

(* ------------------------------------------------------------------ *)
(* Structural checks and equality                                      *)
(* ------------------------------------------------------------------ *)

let equal_body a b =
  a.ops = b.ops && a.block_start = b.block_start && a.n_regs = b.n_regs

(* Structural invariants of a lowered body.  [expect] is the trace's
   block gid array; when given, every guard's expected block is checked
   against it. *)
let check ?expect (b : body) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let n_pos = Array.length b.block_start in
  if n_pos = 0 then err "no positions";
  if n_pos > 0 && b.block_start.(0) <> 0 then
    err "block_start.(0) = %d, want 0" b.block_start.(0);
  for p = 1 to n_pos - 1 do
    if b.block_start.(p) < b.block_start.(p - 1) then
      err "block_start not monotone at %d" p
  done;
  if Array.fold_left ( + ) 0 b.pos_ops <> Array.length b.ops then
    err "pos_ops sums to %d, want %d"
      (Array.fold_left ( + ) 0 b.pos_ops)
      (Array.length b.ops);
  (* every register mentioned must be allocated *)
  Array.iter
    (fun op ->
      let regs =
        match def_of op with Some d -> d :: uses_of op | None -> uses_of op
      in
      List.iter
        (fun r -> if r < 0 || r >= b.n_regs then err "register %d out of range" r)
        regs)
    b.ops;
  (* guards: exactly one per position 1..n-1, with the right pos *)
  let seen = Array.make (max 1 n_pos) 0 in
  Array.iter
    (fun op ->
      match op with
      | Guard { pos; expect = e }
      | Cmp_guard { pos; expect = e; _ }
      | Cmpz_guard { pos; expect = e; _ } ->
          if pos <= 0 || pos >= n_pos then err "guard pos %d out of range" pos
          else begin
            seen.(pos) <- seen.(pos) + 1;
            match expect with
            | Some gids when pos < Array.length gids && gids.(pos) <> e ->
                err "guard at %d expects block %d, trace has %d" pos e
                  gids.(pos)
            | _ -> ()
          end
      | _ -> ())
    b.ops;
  for p = 1 to n_pos - 1 do
    if seen.(p) <> 1 then err "position %d has %d guards, want 1" p seen.(p)
  done;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let cval_to_string = function
  | Cint v -> string_of_int v
  | Cfloat v -> Printf.sprintf "%g" v
  | Cnull -> "null"

let iop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Ushr -> "ushr"

let fop_to_string = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let op_to_string = function
  | Const { dst; v } -> Printf.sprintf "r%d = const %s" dst (cval_to_string v)
  | Move { dst; src } -> Printf.sprintf "r%d = r%d" dst src
  | Iarith { op; dst; a; b } ->
      Printf.sprintf "r%d = %s r%d, r%d" dst (iop_to_string op) a b
  | Farith { op; dst; a; b } ->
      Printf.sprintf "r%d = %s r%d, r%d" dst (fop_to_string op) a b
  | Ineg { dst; src } -> Printf.sprintf "r%d = neg r%d" dst src
  | Fneg { dst; src } -> Printf.sprintf "r%d = fneg r%d" dst src
  | F2i { dst; src } -> Printf.sprintf "r%d = f2i r%d" dst src
  | I2f { dst; src } -> Printf.sprintf "r%d = i2f r%d" dst src
  | Fcmp { dst; a; b } -> Printf.sprintf "r%d = fcmp r%d, r%d" dst a b
  | Load { dst; slot } -> Printf.sprintf "r%d = local[%d]" dst slot
  | Store { slot; src } -> Printf.sprintf "local[%d] = r%d" slot src
  | Inc { slot; delta } -> Printf.sprintf "local[%d] += %d" slot delta
  | Getfield { dst; obj; cid; slot } ->
      Printf.sprintf "r%d = r%d.f%d_%d" dst obj cid slot
  | Putfield { obj; src; cid; slot } ->
      Printf.sprintf "r%d.f%d_%d = r%d" obj cid slot src
  | New_obj { dst; cid } -> Printf.sprintf "r%d = new c%d" dst cid
  | Instance_of { dst; src; cid } ->
      Printf.sprintf "r%d = r%d instanceof c%d" dst src cid
  | New_array { dst; len; _ } -> Printf.sprintf "r%d = newarray r%d" dst len
  | Array_load { dst; arr; idx; _ } ->
      Printf.sprintf "r%d = r%d[r%d]" dst arr idx
  | Array_store { arr; idx; src; _ } ->
      Printf.sprintf "r%d[r%d] = r%d" arr idx src
  | Array_len { dst; src } -> Printf.sprintf "r%d = len r%d" dst src
  | Branch { cond; a; b } ->
      Printf.sprintf "br_%s r%d, r%d" (Instr.cond_to_string cond) a b
  | Branchz { cond; src } ->
      Printf.sprintf "brz_%s r%d" (Instr.cond_to_string cond) src
  | Switch { src } -> Printf.sprintf "switch r%d" src
  | Call { target = Static mid } -> Printf.sprintf "call m%d" mid
  | Call { target = Virtual sel } -> Printf.sprintf "callv s%d" sel
  | Ret Rvoid -> "ret"
  | Ret Rint -> "iret"
  | Ret Rfloat -> "fret"
  | Ret Rref -> "aret"
  | Throw { src } -> Printf.sprintf "throw r%d" src
  | Guard { pos; expect } -> Printf.sprintf "guard @%d -> b%d" pos expect
  | Cmp_guard { cond; a; b; pos; expect } ->
      Printf.sprintf "cmp%s.guard r%d, r%d @%d -> b%d"
        (Instr.cond_to_string cond) a b pos expect
  | Cmpz_guard { cond; src; pos; expect } ->
      Printf.sprintf "cmpz%s.guard r%d @%d -> b%d" (Instr.cond_to_string cond)
        src pos expect
  | Load_arith { op; dst; slot; other; load_left } ->
      if load_left then
        Printf.sprintf "r%d = %s local[%d], r%d" dst (iop_to_string op) slot
          other
      else
        Printf.sprintf "r%d = %s r%d, local[%d]" dst (iop_to_string op) other
          slot

let pp ppf (b : body) =
  Format.fprintf ppf
    "@[<v>micro-IR: %d ops / %d src instrs, %d regs, folded=%d dead=%d \
     fused=%d@,"
    (Array.length b.ops) b.src_instrs b.n_regs b.folded b.dead b.fused;
  Array.iteri
    (fun i op -> Format.fprintf ppf "  %3d: %s@," i (op_to_string op))
    b.ops;
  Format.fprintf ppf "@]"
