(** The byte-cost model of the profiling and trace structures — the one
    definition shared by the footprint-aware eviction policy
    ({!Trace_cache.pressure_evict}) and the harness footprint report,
    so the two cannot drift (paper §3.5's representation-cost concern,
    §3.3's cache-size concern). *)

val node_bytes : int
(** Estimated bytes per BCG node: two block ids, four counters, a state
    tag, an inline-cache pointer and a predecessor list entry. *)

val edge_bytes : int
(** Estimated bytes per BCG edge: target id, pointer, 16-bit counter. *)

val instr_bytes : int
(** Bytes per cached trace instruction — one direct-threaded code slot. *)

val trace_bytes : Trace.t -> int
(** Estimated i-cache footprint of one cached trace:
    [total_instrs * instr_bytes]. *)

val cache_bytes : trace_instrs:int -> int
(** Footprint of a whole cache holding [trace_instrs] instructions. *)

val bcg_bytes : nodes:int -> edges:int -> int
(** Footprint of a BCG with the given population. *)
