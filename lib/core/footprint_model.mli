(** The byte-cost model of the profiling and trace structures — the one
    definition shared by the footprint-aware eviction policy
    ({!Trace_cache.pressure_evict}) and the harness footprint report,
    so the two cannot drift (paper §3.5's representation-cost concern,
    §3.3's cache-size concern). *)

val node_bytes : int
(** Estimated bytes per BCG node: two block ids, four counters, a state
    tag, an inline-cache pointer and a predecessor list entry. *)

val edge_bytes : int
(** Estimated bytes per BCG edge: target id, pointer, 16-bit counter. *)

val instr_bytes : int
(** Bytes per cached trace instruction — one direct-threaded code slot. *)

val microp_bytes : int
(** Bytes per decoded micro-op of a compiled (lowered) trace body:
    opcode plus registers/immediate. *)

val trace_bytes : Trace.t -> int
(** Estimated i-cache footprint of one cached trace:
    [total_instrs * instr_bytes], plus [n_ops * microp_bytes] for the
    lowered body when the trace holds a compiled-tier slot — so
    footprint-aware eviction and the cache-pressure path price compiled
    traces honestly. *)

val cache_bytes : trace_instrs:int -> int
(** Footprint of a whole cache holding [trace_instrs] instructions. *)

val bcg_bytes : nodes:int -> edges:int -> int
(** Footprint of a BCG with the given population. *)
