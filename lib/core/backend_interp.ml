(* Pure interpretation: the ladder's last resort (Health.Interp_only).

   Every block is an ordinary block dispatch and not even the profiler
   hook runs — the profiler only counts how much of the stream it missed,
   so its branch context goes stale (the engine resets it on promotion
   back up).  Clean dispatches still feed the health ladder so the
   engine can probe its way back to profiling. *)

let name = "interp"

let describe = "pure interpretation: no profiling, no traces"

let step (ctx : Backend.ctx) g =
  Backend.prologue ctx;
  ctx.Backend.block_dispatches <- ctx.Backend.block_dispatches + 1;
  ctx.Backend.just_completed <- false;
  Backend.attr_step ctx g;
  Profiler.note_skipped ctx.Backend.profiler;
  Backend.note_executed ctx g;
  Backend.apply_health ctx (Health.clean_dispatch ctx.Backend.health)

(* OSR detection needs the profiler's view of the stream; interp-only is
   the level where even that is off, so header heat does not accrue. *)
let poll_osr (_ : Backend.ctx) (_ : Cfg.Layout.gid) = ()

(* A deopt resume is an ordinary interp dispatch — [step] never consults
   the cache anyway. *)
let deopt_resume = step

let on_block ctx g = Backend.observe ~step ~deopt_resume ctx g

let stats_into (ctx : Backend.ctx) (s : Stats.t) =
  { s with Stats.block_dispatches = ctx.Backend.block_dispatches }
