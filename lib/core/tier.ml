module Layout = Cfg.Layout
module Block = Cfg.Block
module Cp = Analysis.Constprop
module Diag = Analysis.Diag

(* The compiled tier's policy and plumbing: lowering a trace's blocks to
   micro-IR with the analysis facts wired in ([lower_trace]), validating
   a lowered body by re-derivation (TL220, [check_lowered]), and the
   cost model that decides which traces hold the [Config.Tier] budget's
   compiled slots ([maybe_compile], [recompile_restored]).

   The heat signal is the cache's per-entry use count — the same number
   the attribution hot-report ranks traces by and footprint-aware
   eviction divides by.  It is also the one piece of tier-relevant state
   a warm-start snapshot persists (as [snap_heat]), which is what makes
   the tier re-derivable on restore: runtime promotion and restore-time
   recompilation key on the same counter, so a restored cache converges
   on the same compiled set without the snapshot ever storing a lowered
   body. *)

(* The trace's positions as (gid, instructions) pairs — the micro-IR
   converter's input (the textual concatenation [Trace_optimizer] also
   works from, kept per-position so guards land between blocks). *)
let trace_blocks_code (layout : Layout.t) (tr : Trace.t) :
    (Layout.gid * Bytecode.Instr.t array) array =
  Array.map
    (fun g ->
      let b = Layout.block layout g in
      let m = Layout.method_of_gid layout g in
      ( g,
        Array.init
          (Block.end_pc b - b.Block.start_pc)
          (fun i -> m.Bytecode.Mthd.code.(b.Block.start_pc + i)) ))
    tr.Trace.blocks

let lower_trace (layout : Layout.t) (tr : Trace.t) : Microir.body =
  let cp_cache : (int, Cp.t) Hashtbl.t = Hashtbl.create 4 in
  let constprop mid =
    match Hashtbl.find_opt cp_cache mid with
    | Some c -> c
    | None ->
        let c =
          Cp.compute layout.Layout.program
            (Layout.cfg_of_method layout ~method_id:mid)
        in
        Hashtbl.add cp_cache mid c;
        c
  in
  (* Constprop block-entry facts, as lowering-time constants.  Sound at
     the start of each position; Microir stops consulting the oracle for
     slots written inside the position and after call barriers. *)
  let local_const ~pos ~slot =
    let g = tr.Trace.blocks.(pos) in
    let mid = (Layout.method_of_gid layout g).Bytecode.Mthd.id in
    let bi = g - layout.Layout.offsets.(mid) in
    match (constprop mid).Cp.entry.(bi) with
    | Cp.Unreached -> None
    | Cp.Reached { locals; _ } ->
        if slot < 0 || slot >= Array.length locals then None
        else (
          match locals.(slot) with
          | Cp.Int { lo; hi } when lo = hi -> Some (Microir.Cint lo)
          | Cp.Float_const f -> Some (Microir.Cfloat f)
          | Cp.Null -> Some Microir.Cnull
          | _ -> None)
  in
  (* The trailing-store license, mirroring Trace_optimizer: a slot dead
     at the trace seam (final block's live-out) may drop its trailing
     store — unless the store's position or any later one lies in a
     handler-covered block, where an exceptional edge could observe it.
     Position granularity is coarser than Trace_optimizer's per-index
     suffix, hence conservative. *)
  let live_out = Trace_optimizer.live_out_of layout tr in
  let n = Array.length tr.Trace.blocks in
  let covered_suffix =
    let live_cache : (int, Analysis.Liveness.t) Hashtbl.t = Hashtbl.create 4 in
    let covered_of g =
      let mid = (Layout.method_of_gid layout g).Bytecode.Mthd.id in
      let live =
        match Hashtbl.find_opt live_cache mid with
        | Some l -> l
        | None ->
            let l =
              Analysis.Liveness.compute
                (Layout.cfg_of_method layout ~method_id:mid)
            in
            Hashtbl.add live_cache mid l;
            l
      in
      live.Analysis.Liveness.covered.(g - layout.Layout.offsets.(mid))
    in
    let flags = Array.map covered_of tr.Trace.blocks in
    for i = n - 2 downto 0 do
      flags.(i) <- flags.(i) || flags.(i + 1)
    done;
    flags
  in
  let store_dead ~pos ~slot =
    (not (live_out slot)) && not covered_suffix.(pos)
  in
  Microir.lower ~local_const ~store_dead (trace_blocks_code layout tr)

(* ------------------------------------------------------------------ *)
(* TL220: lowering validation by re-derivation                         *)
(* ------------------------------------------------------------------ *)

let check_lowered ?context (layout : Layout.t) (tr : Trace.t) : Diag.t list =
  match tr.Trace.lowered with
  | None -> []
  | Some body ->
      let loc = Diag.Trace_loc { trace_id = tr.Trace.id } in
      let structural =
        List.map
          (fun msg ->
            Diag.make ?context ~code:"TL220" ~severity:Diag.Error ~loc
              (Printf.sprintf "lowered body structurally unsound: %s" msg))
          (Microir.check ~expect:tr.Trace.blocks body)
      in
      let fresh = lower_trace layout tr in
      let mismatch =
        if Microir.equal_body fresh body then []
        else
          [
            Diag.make ?context ~code:"TL220" ~severity:Diag.Error ~loc
              (Printf.sprintf
                 "lowering mismatch: re-lowering the source blocks \
                  produced a different op stream (%d ops vs %d cached)"
                 (Microir.n_ops fresh) (Microir.n_ops body));
          ]
      in
      structural @ mismatch

(* ------------------------------------------------------------------ *)
(* The cost model                                                      *)
(* ------------------------------------------------------------------ *)

let emit_compiled events (tr : Trace.t) (body : Microir.body) =
  if Events.enabled events then
    Events.emit events
      (Events.Trace_compiled
         {
           trace_id = tr.Trace.id;
           ops = Microir.n_ops body;
           fused = body.Microir.fused;
           src_instrs = body.Microir.src_instrs;
         })

let emit_demoted events (tr : Trace.t) ~uses =
  if Events.enabled events then
    Events.emit events (Events.Tier_demoted { trace_id = tr.Trace.id; uses })

let compile (layout : Layout.t) ~events (tr : Trace.t) : Microir.body =
  let body = lower_trace layout tr in
  tr.Trace.lowered <- Some body;
  emit_compiled events tr body;
  body

(* Promotion decision at trace entry.  Returns the (compiled, demoted)
   increments for the caller's counters — (0|1, 0|1).

   The candidate must have crossed [compile_after] uses (the hot-report
   dominance proxy).  When the [compile_budget] is full, the coldest
   compiled trace is demoted first — but only when it is strictly colder
   than the candidate (no thrash between equally hot traces) and not
   pinned (a dispatch loop may be following its micro-IR right now; the
   cache counts the refusal).  If the budget is still full after that,
   the candidate stays on the interpreted tier and may retry on a later
   entry. *)
let maybe_compile (config : Config.t) (layout : Layout.t)
    (cache : Trace_cache.t) ~events (tr : Trace.t) : int * int =
  if not (Config.tier_enabled config) then (0, 0)
  else if tr.Trace.lowered <> None then (0, 0)
  else
    let uses = Trace_cache.trace_uses cache tr in
    if uses < Config.tier_compile_after config then (0, 0)
    else begin
      let budget = Config.tier_compile_budget config in
      let ledger_record ?trace_id action =
        match Trace_cache.ledger cache with
        | Some l -> Ledger.record l ?trace_id action
        | None -> ()
      in
      let demoted =
        if Trace_cache.n_compiled cache >= budget then
          match Trace_cache.coldest_compiled cache ~excluding:(Some tr) with
          | Some victim ->
              let vuses = Trace_cache.trace_uses cache victim in
              if vuses < uses && Trace_cache.demote_lowered cache victim
              then begin
                emit_demoted events victim ~uses:vuses;
                ledger_record ~trace_id:victim.Trace.id
                  (Ledger.Demote { heat = vuses; winner_heat = uses });
                1
              end
              else 0
          | None -> 0
        else 0
      in
      if Trace_cache.n_compiled cache >= budget then (0, demoted)
      else begin
        ignore (compile layout ~events tr);
        ledger_record ~trace_id:tr.Trace.id
          (Ledger.Compile
             {
               heat = uses;
               compile_after = Config.tier_compile_after config;
               budget;
               n_compiled = Trace_cache.n_compiled cache;
             });
        (1, demoted)
      end
    end

(* Restore-time tier re-derivation.  Snapshots never persist lowered
   bodies; what they do persist is each entry's heat ([snap_heat]).
   Recompiling the hottest restored traces that cross [compile_after] —
   up to the budget, hottest first, trace id breaking ties for
   determinism — reconstructs the same compiled set a run would converge
   on, because runtime promotion keys on the same use counter. *)
let recompile_restored (config : Config.t) (layout : Layout.t)
    (cache : Trace_cache.t) ~events : int =
  if not (Config.tier_enabled config) then 0
  else begin
    let candidates = ref [] in
    Trace_cache.iter cache (fun tr ->
        if tr.Trace.lowered = None then begin
          let uses = Trace_cache.trace_uses cache tr in
          if uses >= Config.tier_compile_after config then
            candidates := (tr, uses) :: !candidates
        end);
    let sorted =
      List.sort
        (fun (a, ua) (b, ub) ->
          match compare ub ua with
          | 0 -> compare a.Trace.id b.Trace.id
          | c -> c)
        !candidates
    in
    let room = Config.tier_compile_budget config - Trace_cache.n_compiled cache in
    let n = ref 0 in
    List.iteri
      (fun i (tr, uses) ->
        if i < room then begin
          ignore (compile layout ~events tr);
          (match Trace_cache.ledger cache with
          | Some l ->
              Ledger.record l ~trace_id:tr.Trace.id
                (Ledger.Compile
                   {
                     heat = uses;
                     compile_after = Config.tier_compile_after config;
                     budget = Config.tier_compile_budget config;
                     n_compiled = Trace_cache.n_compiled cache;
                   })
          | None -> ());
          incr n
        end)
      sorted;
    !n
  end
