(* The engine's degradation ladder.

   Three operating levels, in descending capability:

     Full_tracing    — profile every dispatch, build and dispatch traces
     Profiling_only  — profile every dispatch, never build or enter traces
     Interp_only     — pure block interpretation, no profiling at all

   Detected faults (a quarantined trace, a healed BCG node) are
   *strikes*; accumulating [demote_after] strikes without an intervening
   recovery window drops the engine one level.  Every dispatch that
   passes without a detection is a recovery probe: after [recover_after]
   consecutive clean dispatches the engine climbs one level back up (and
   at full tracing the same window forgives stale strikes, so isolated
   faults never accumulate into a demotion across a whole run). *)

type level = Full_tracing | Profiling_only | Interp_only

let level_to_string = function
  | Full_tracing -> "full-tracing"
  | Profiling_only -> "profiling-only"
  | Interp_only -> "interp-only"

let level_rank = function
  | Full_tracing -> 0
  | Profiling_only -> 1
  | Interp_only -> 2

type transition = Stay | Changed of level * level

type t = {
  demote_after : int; (* strikes before dropping a level *)
  recover_after : int; (* clean dispatches before climbing a level *)
  mutable level : level;
  mutable strikes : int;
  mutable clean : int; (* consecutive clean dispatches *)
  mutable demotions : int;
  mutable promotions : int;
}

let create ~demote_after ~recover_after =
  if demote_after < 1 then invalid_arg "Health.create: demote_after < 1";
  if recover_after < 1 then invalid_arg "Health.create: recover_after < 1";
  {
    demote_after;
    recover_after;
    level = Full_tracing;
    strikes = 0;
    clean = 0;
    demotions = 0;
    promotions = 0;
  }

let level t = t.level

let is_degraded t = t.level <> Full_tracing

let strikes t = t.strikes

let demotions t = t.demotions

let promotions t = t.promotions

let down = function
  | Full_tracing -> Profiling_only
  | Profiling_only | Interp_only -> Interp_only

let up = function
  | Interp_only -> Profiling_only
  | Profiling_only | Full_tracing -> Full_tracing

(* One detected fault.  The clean-dispatch window restarts; enough
   strikes demote one level (and reset, so the next level gets a fresh
   budget). *)
let strike t : transition =
  t.clean <- 0;
  t.strikes <- t.strikes + 1;
  if t.strikes >= t.demote_after && t.level <> Interp_only then begin
    let from_level = t.level in
    t.level <- down t.level;
    t.strikes <- 0;
    t.demotions <- t.demotions + 1;
    Changed (from_level, t.level)
  end
  else Stay

(* One dispatch that completed without any detection.  A full recovery
   window promotes one level; at full tracing it forgives stale
   strikes instead. *)
let clean_dispatch t : transition =
  if t.level = Full_tracing && t.strikes = 0 then Stay
  else begin
    t.clean <- t.clean + 1;
    if t.clean >= t.recover_after then begin
      t.clean <- 0;
      t.strikes <- 0;
      if t.level = Full_tracing then Stay
      else begin
        let from_level = t.level in
        t.level <- up t.level;
        t.promotions <- t.promotions + 1;
        Changed (from_level, t.level)
      end
    end
    else Stay
  end

let pp ppf t =
  Format.fprintf ppf "%s (strikes=%d clean=%d demoted=%d recovered=%d)"
    (level_to_string t.level)
    t.strikes t.clean t.demotions t.promotions
