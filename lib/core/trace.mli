(** A trace: a sequence of basic blocks expected to execute to completion
    (paper §3.7).

    A trace is entered by {e transition}: it is dispatched when
    [blocks.(0)] is reached with {!field:first} as the previously executed
    block — the paper's "a sequence which enters [N_X0X1]".  Its
    {!field:prob} is the product of the branch correlations along the
    trace at construction time, the expected completion probability.

    A loop-body trace whose last block equals {!field:first} chains back
    into itself, covering steady-state loop execution. *)

type t = {
  id : int;
  first : Cfg.Layout.gid;  (** entry context block [X0] *)
  blocks : Cfg.Layout.gid array;
      (** [X1 .. Xk]: the blocks executed from the trace *)
  prob : float;  (** expected completion probability at construction *)
  instr_len : int array;  (** static instruction count per block *)
  total_instrs : int;
  mutable entered : int;
  mutable completed : int;
  mutable partial_exits : int;
  mutable partial_instrs : int;
      (** instructions executed on early exits *)
  mutable owner : int;
      (** id of the session whose profiler built this trace ([0] for a
          single-engine run).  Stamped by the cache at installation and
          kept by the first builder on a hash-cons reuse, so the cache
          can count cross-session reuse. *)
  mutable pruned : bool array;
      (** guard-implication pruning verdicts from
          [Tracegen.Trace_prover]: [pruned.(i)] means the guard at
          position [i] is implied by the trace's entry facts plus the
          guards before it, so the dispatch loop elides (accounts rather
          than checks) it.  [[||]] means no pruning.  Derived state:
          recomputable from the body, never persisted in snapshots;
          restored traces start unpruned. *)
  mutable validated : bool;
      (** whether the [debug_checks] sweep already ran translation
          validation on this trace; derived state, never persisted. *)
  mutable promoted : bool;
      (** built by OSR mid-loop promotion rather than the greedy cutter:
          the completion probability is a product of possibly immature
          correlations and may sit below the cutter's threshold — the
          TL201 invariant is relaxed for such traces.  Not persisted
          directly: a sub-threshold probability identifies a promoted
          trace on restore, because the cutter never commits one. *)
  mutable lowered : Microir.body option;
      (** the compiled tier: the trace's blocks lowered to register
          micro-IR ({!Microir}), present only while the trace holds a
          compiled-tier slot under [Config.Tier]'s budget.  Derived
          state, never persisted — a restored cache re-lowers whatever
          the tier cost model picks, exactly like [pruned]/[validated]
          re-derive. *)
}

val make :
  id:int ->
  layout:Cfg.Layout.t ->
  first:Cfg.Layout.gid ->
  blocks:Cfg.Layout.gid array ->
  prob:float ->
  t
(** @raise Invalid_argument on an empty block sequence. *)

val n_blocks : t -> int

val entry_key : t -> Cfg.Layout.gid * Cfg.Layout.gid
(** The entering transition [(first, blocks.(0))]. *)

val last_block : t -> Cfg.Layout.gid

val same_sequence : t -> t -> bool
(** Same entry context and same block sequence: the same cache entry. *)

val completion_rate : t -> float

val describe : Cfg.Layout.t -> t -> string
(** One-line human-readable rendering with block names and counters. *)

val pp : Format.formatter -> t -> unit
