(** On-stack replacement: mid-trace deoptimization and mid-loop
    promotion (ROADMAP item 4).

    The paper's engine only switches between block dispatch and trace
    dispatch at trace boundaries: a guard failure abandons the whole
    residue and restarts from the trace head, and a hot loop keeps
    interpreting until its next header re-entry.  OSR removes both blind
    spots:

    - {e deoptimization} — a failed guard (organic, FT008-flipped, or a
      mid-flight condemnation by the self-healing sweeps) resumes block
      dispatch {e at the failing block}.  Trace dispatch is a pure
      observational overlay, so the interpreter is already in exactly
      the state pure block dispatch would have produced; the deopt
      {e verifies} this by materializing the live continuation
      ({!Vm.Interp.materialize}) and comparing its innermost block
      against the resume block — a mismatch is invariant TL219;
    - {e promotion} — outside-trace dispatches of natural-loop headers
      ({!Analysis.Loops}) are counted, and a header crossing
      {!Config.Osr.t.promote_after} promotes its loop into a freshly
      built back-edge trace mid-iteration, entered at the header on the
      very next latch→header transition.

    This module holds the detection tables, the materialization hook and
    the OSR counters; the dispatch-loop integration lives in [Backend]
    (deopt) and [Backend_trace] / [Backend_profile] (promotion). *)

type reason =
  | Guard_failure  (** organic guard mismatch while following a trace *)
  | Guard_flip  (** an armed FT008 fault forced the mismatch *)
  | Condemned
      (** a debug-check sweep condemned the trace being executed and the
          engine cut over mid-flight *)

val reason_to_string : reason -> string
(** ["guard-failure"] / ["guard-flip"] / ["condemned"] — the
    [Deopt_entered] event payload spelling. *)

type t

val create : promote_after:int -> Cfg.Layout.t -> t
(** Compute the natural-loop header set of every method CFG and
    initialize empty counters.
    @raise Invalid_argument if [promote_after < 1]. *)

val set_materialize : t -> (unit -> Vm.Interp.materialized option) -> unit
(** Install the interpreter-state hook — whoever owns the live
    [Vm.Interp.handle] ([Engine.drive], [Session.add]) points it here.
    Without a hook deopts skip the TL219 state check (observer-only
    drivers have no interpreter to materialize). *)

val materialized : t -> Vm.Interp.materialized option
(** Materialize the live interpreter continuation through the hook. *)

val is_header : t -> Cfg.Layout.gid -> bool
(** Whether [g] is a natural-loop header (of any method). *)

val observe_header : t -> Cfg.Layout.gid -> promote:bool -> int option
(** Count one outside-trace dispatch of [g].  Returns [Some hotness]
    exactly when [g] is a header, its counter crosses [promote_after]
    {e and} [promote] is true (the counter then resets); with
    [promote = false] the counter saturates at the threshold so the heat
    survives until a trace-building backend can act on it.  Never
    allocates. *)

(** {2 Bookkeeping}

    Written by the dispatch loop, read by the engine's stats/gauges. *)

val note_promotion : t -> trace_id:int -> unit
(** A mid-loop promotion installed (or re-armed) trace [trace_id]; its
    first entry will count as an OSR entry taken. *)

val note_entry : t -> trace_id:int -> unit
(** Called at every trace entry; counts the first entry of the latest
    promoted trace. *)

val note_deopt : t -> residue:int -> unit

val note_state_check : t -> unit

val note_state_mismatch : t -> unit

val deopts : t -> int
(** Deoptimizations taken (guard failures, flips and cut-overs). *)

val residue_blocks : t -> int
(** Trace positions abandoned past the deopt point, summed — the work a
    non-OSR side exit would have thrown away. *)

val promotions : t -> int
(** Mid-loop promotions fired. *)

val entries : t -> int
(** Promoted traces entered on their armed back-edge. *)

val state_checks : t -> int
(** Deopts that could materialize interpreter state (a hook was set). *)

val state_mismatches : t -> int
(** TL219 findings: materialized state disagreed with the resume block.
    Always [0] on a healthy engine. *)

val promote_after : t -> int
