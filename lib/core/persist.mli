(** The versioned, checksummed binary snapshot format for warm starts
    (ROADMAP item 5): the flattened BCG plus the live trace cache,
    behind a fixed header that is validated outermost-first so a foreign
    or corrupted snapshot is rejected with a typed {!error} before any
    value is constructed — decoding never half-loads.

    {v
     offset  size  field
          0     8  magic "TCSNAP01"
          8     4  format version (u32 LE)
         12    16  layout stamp (MD5 of the program layout)
         28     8  payload length (u64 LE)
         36    16  payload checksum (MD5)
         52     n  payload
    v}

    Payload integers are signed 64-bit little-endian; floats travel as
    their IEEE-754 bit pattern.  Both halves are written in the
    canonical order {!Bcg.snapshot} and {!Trace_cache.snapshot} produce,
    so encode → decode → encode is bit-identical. *)

val snapshot_version : int
(** The format version this build writes and reads (the single bump
    site).  Bumped on any change to the header or payload layout. *)

val layout_stamp : Cfg.Layout.t -> string
(** 16-byte MD5 fingerprint of the program layout (full disassembly plus
    block numbering).  A snapshot only loads over a layout with the same
    stamp — gids are meaningless under any other. *)

type error =
  | Truncated of { expected : int; got : int }
      (** shorter than the header, or than the length the header
          declares *)
  | Bad_magic  (** the first 8 bytes are not the snapshot magic *)
  | Version_mismatch of { got : int; expected : int }
      (** written by a different format version *)
  | Layout_mismatch of { got : string; expected : string }
      (** written over a different program layout (stamps in hex) *)
  | Checksum_mismatch  (** the payload does not match its MD5 *)
  | Malformed of string
      (** the checksum held but the payload violates the grammar or a
          range check (out-of-range gid, unknown state tag, dangling
          edge, trailing bytes, …) *)

val error_to_string : error -> string

type snapshot = {
  bcg_nodes : Bcg.node_snap list;
  cache_entries : Trace_cache.entry_snap list;
}
(** The decoded value: exactly what {!Bcg.restore} and
    {!Trace_cache.restore} consume. *)

val encode : layout:Cfg.Layout.t -> snapshot -> string
(** Serialize with the header stamped for [layout]. *)

val decode : layout:Cfg.Layout.t -> string -> (snapshot, error) result
(** Validate and parse.  Checks run outermost-first — magic, version,
    layout stamp, length, checksum, then payload grammar and ranges
    (gids within [layout], state tags known, edge targets present,
    weights ≥ 1, probabilities in [0, 1]) — and the first failure is
    returned; on [Error] nothing was constructed. *)
