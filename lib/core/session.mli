(** Multi-workload sessions: several programs run "concurrently" over a
    shared trace cache.

    The session round-robins its members, each advancing a fixed batch
    of basic blocks per turn until every program has finished.  Each
    member owns a full {!Engine} (private BCG profiler, health ladder,
    metrics registry), but members executing the {e same layout} share
    one {!Trace_cache} — a hot trace reconstructed by one member is
    entered by the others without being rebuilt.  The cache counts that
    reuse ({!Trace_cache.n_cross_installs} /
    {!Trace_cache.n_cross_entries}); {!cross_installs} and
    {!cross_entries} sum it over the session.

    Tracing remains a pure overlay under interleaving: every member's VM
    result is bit-identical to a solo run of the same program. *)

type t

type member

val create : ?batch:int -> unit -> t
(** An empty session.  [batch] is the number of basic blocks each member
    advances per round-robin turn (default [1024]).
    @raise Invalid_argument if [batch < 1]. *)

val batch : t -> int

val add :
  ?name:string ->
  ?config:Config.t ->
  ?events:Events.t ->
  ?max_instructions:int ->
  t ->
  Cfg.Layout.t ->
  member
(** Register a program.  The member gets a fresh engine; if an earlier
    member runs the same layout (physical equality) the new engine is
    created over that member's trace cache ({!Engine.create}[ ~cache]),
    whose creator's config governs capacity and healing.  [name]
    defaults to ["s<id>"]; other parameters as in {!Engine.create} /
    {!Vm.Interp.start}. *)

val run : t -> unit
(** Round-robin all unfinished members to completion.  Idempotent;
    members added afterwards are picked up by a later [run]. *)

val members : t -> member list
(** In registration order. *)

val caches : t -> Trace_cache.t list
(** The distinct trace caches in use, in member order — shorter than
    {!members} exactly when sharing happened. *)

val cross_installs : t -> int
(** Constructions saved by sharing: hash-cons hits on a trace built by a
    different member, summed over {!caches}. *)

val cross_entries : t -> int
(** Dispatch entries into a trace built by a different member, summed
    over {!caches}. *)

(** {2 Members} *)

val member_id : member -> int
(** The session id (>= 1) stamped on traces this member builds. *)

val member_name : member -> string

val engine : member -> Engine.t

val finished : member -> bool

val vm_result : member -> Vm.Interp.result
(** @raise Invalid_argument while the member is still running. *)

val stats : member -> Stats.t
(** Full statistics for a finished member; wall time is the member's
    accumulated stepping time. *)
