(* Parameters of the profiling and trace-generation algorithm (paper §5.2).

   The two the paper sweeps are [start_state_delay] (1 / 64 / 4096) and
   [threshold] (1.00 / 0.99 / 0.98 / 0.97 / 0.95); the rest are the fixed
   constants the paper states: 256-dispatch decay period and 16-bit
   counters. *)

type t = {
  start_state_delay : int;
      (* executions before a branch node leaves the newly-created state;
         filters rarely executed code *)
  threshold : float;
      (* minimum expected trace completion probability, and the
         strong/weak correlation boundary *)
  decay_period : int; (* node executions between exponential decay passes *)
  counter_max : int; (* saturation value of the 16-bit counters *)
  max_trace_blocks : int; (* defensive cap on trace length *)
  min_trace_blocks : int; (* traces shorter than this are not cached *)
  max_walk : int; (* cap on maximum-likelihood walk length *)
  max_backtrack : int; (* cap on entry-point backtracking depth *)
  build_traces : bool; (* false = profile-only run (Table VI) *)
  snapshot_period : int;
      (* dispatches between periodic metrics snapshots; 0 disables the
         series (the observability layer's quiescent default) *)
  debug_checks : bool;
      (* run the trace/BCG invariant checks at trace-construction and
         decay boundaries, emitting an event per violation *)
  (* fault tolerance *)
  max_cache_traces : int;
      (* bound on live traces in the cache; 0 = unbounded.  Exceeding it
         evicts the least recently dispatched entry. *)
  max_cache_blocks : int;
      (* bound on the total block count of live traces; 0 = unbounded *)
  self_heal : bool;
      (* validate traces at dispatch, quarantine on any detected fault,
         heal corrupted BCG nodes, and walk the degradation ladder *)
  heal_max_rebuilds : int;
      (* quarantines of one entry transition before it is permanently
         blacklisted *)
  heal_backoff : int;
      (* node executions before a quarantined entry may be rebuilt;
         doubles per quarantine of the same entry *)
  heal_demote_after : int; (* detections before dropping a health level *)
  heal_recover_after : int;
      (* consecutive clean dispatches before climbing a health level *)
  fault_spec : string;
      (* fault-injection schedule DSL (see Faults.parse); "" disables
         injection.  Parsed by the engine at creation. *)
  fault_seed : int; (* PRNG seed of the fault injector *)
}

let default =
  {
    start_state_delay = 64;
    threshold = 0.97;
    decay_period = 256;
    counter_max = 65535;
    max_trace_blocks = 64;
    min_trace_blocks = 2;
    max_walk = 256;
    max_backtrack = 128;
    build_traces = true;
    snapshot_period = 0;
    debug_checks = false;
    max_cache_traces = 0;
    max_cache_blocks = 0;
    self_heal = false;
    heal_max_rebuilds = 3;
    heal_backoff = 512;
    heal_demote_after = 3;
    heal_recover_after = 400;
    fault_spec = "";
    fault_seed = 1;
  }

let validate t =
  if t.start_state_delay < 1 then invalid_arg "start_state_delay < 1";
  if t.threshold <= 0.0 || t.threshold > 1.0 then
    invalid_arg "threshold out of (0, 1]";
  if t.decay_period < 2 then invalid_arg "decay_period < 2";
  if t.counter_max < 2 then invalid_arg "counter_max < 2";
  if t.min_trace_blocks < 2 then invalid_arg "min_trace_blocks < 2";
  if t.max_trace_blocks < t.min_trace_blocks then
    invalid_arg "max_trace_blocks < min_trace_blocks";
  if t.snapshot_period < 0 then invalid_arg "snapshot_period < 0";
  if t.max_cache_traces < 0 then invalid_arg "max_cache_traces < 0";
  if t.max_cache_blocks < 0 then invalid_arg "max_cache_blocks < 0";
  if t.heal_max_rebuilds < 1 then invalid_arg "heal_max_rebuilds < 1";
  if t.heal_backoff < 1 then invalid_arg "heal_backoff < 1";
  if t.heal_demote_after < 1 then invalid_arg "heal_demote_after < 1";
  if t.heal_recover_after < 1 then invalid_arg "heal_recover_after < 1"

let make ?(start_state_delay = default.start_state_delay)
    ?(threshold = default.threshold) ?(decay_period = default.decay_period)
    ?(counter_max = default.counter_max)
    ?(max_trace_blocks = default.max_trace_blocks)
    ?(min_trace_blocks = default.min_trace_blocks)
    ?(max_walk = default.max_walk) ?(max_backtrack = default.max_backtrack)
    ?(build_traces = default.build_traces)
    ?(snapshot_period = default.snapshot_period)
    ?(debug_checks = default.debug_checks)
    ?(max_cache_traces = default.max_cache_traces)
    ?(max_cache_blocks = default.max_cache_blocks)
    ?(self_heal = default.self_heal)
    ?(heal_max_rebuilds = default.heal_max_rebuilds)
    ?(heal_backoff = default.heal_backoff)
    ?(heal_demote_after = default.heal_demote_after)
    ?(heal_recover_after = default.heal_recover_after)
    ?(fault_spec = default.fault_spec) ?(fault_seed = default.fault_seed) () =
  let t =
    {
      start_state_delay;
      threshold;
      decay_period;
      counter_max;
      max_trace_blocks;
      min_trace_blocks;
      max_walk;
      max_backtrack;
      build_traces;
      snapshot_period;
      debug_checks;
      max_cache_traces;
      max_cache_blocks;
      self_heal;
      heal_max_rebuilds;
      heal_backoff;
      heal_demote_after;
      heal_recover_after;
      fault_spec;
      fault_seed;
    }
  in
  validate t;
  t

let with_threshold t threshold = { t with threshold }

let with_delay t start_state_delay = { t with start_state_delay }

let pp ppf t =
  Format.fprintf ppf "delay=%d threshold=%.2f decay=%d" t.start_state_delay
    t.threshold t.decay_period
