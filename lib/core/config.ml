(* Parameters of the profiling and trace-generation algorithm (paper §5.2),
   grouped into layered sub-records mirroring the subsystems that consume
   them:

   - [Profile]: the BCG profiler and trace builder (paper §5.2 proper —
     the two swept parameters live here);
   - [Cache]: trace-cache capacity bounds;
   - [Heal]: the self-healing machinery and degradation ladder;
   - [Faults]: the fault-injection schedule.

   [make] keeps the original flat labelled signature, and the per-field
   accessor functions below keep projection sites one call deep, so
   consumers never need to spell the nesting. *)

module Profile = struct
  type t = {
    start_state_delay : int;
        (* executions before a branch node leaves the newly-created state;
           filters rarely executed code *)
    threshold : float;
        (* minimum expected trace completion probability, and the
           strong/weak correlation boundary *)
    decay_period : int; (* node executions between exponential decay passes *)
    counter_max : int; (* saturation value of the 16-bit counters *)
    max_trace_blocks : int; (* defensive cap on trace length *)
    min_trace_blocks : int; (* traces shorter than this are not cached *)
    max_walk : int; (* cap on maximum-likelihood walk length *)
    max_backtrack : int; (* cap on entry-point backtracking depth *)
    build_traces : bool; (* false = profile-only run (Table VI) *)
  }

  let default =
    {
      start_state_delay = 64;
      threshold = 0.97;
      decay_period = 256;
      counter_max = 65535;
      max_trace_blocks = 64;
      min_trace_blocks = 2;
      max_walk = 256;
      max_backtrack = 128;
      build_traces = true;
    }

  let validate t =
    if t.start_state_delay < 1 then invalid_arg "start_state_delay < 1";
    if t.threshold <= 0.0 || t.threshold > 1.0 then
      invalid_arg "threshold out of (0, 1]";
    if t.decay_period < 2 then invalid_arg "decay_period < 2";
    if t.counter_max < 2 then invalid_arg "counter_max < 2";
    if t.min_trace_blocks < 2 then invalid_arg "min_trace_blocks < 2";
    if t.max_trace_blocks < t.min_trace_blocks then
      invalid_arg "max_trace_blocks < min_trace_blocks"
end

module Cache = struct
  type eviction_policy = Lru | Footprint_aware

  let eviction_policy_to_string = function
    | Lru -> "lru"
    | Footprint_aware -> "footprint"

  let eviction_policy_of_string = function
    | "lru" -> Some Lru
    | "footprint" -> Some Footprint_aware
    | _ -> None

  type t = {
    max_traces : int;
        (* bound on live traces in the cache; 0 = unbounded.  Exceeding it
           evicts a victim chosen by [eviction_policy]. *)
    max_blocks : int;
        (* bound on the total block count of live traces; 0 = unbounded *)
    eviction_policy : eviction_policy;
        (* Lru condemns the least recently dispatched entry;
           Footprint_aware condemns the worst estimated-bytes-per-use
           (footprint/heat) ratio *)
  }

  let default = { max_traces = 0; max_blocks = 0; eviction_policy = Lru }

  let validate t =
    if t.max_traces < 0 then invalid_arg "max_cache_traces < 0";
    if t.max_blocks < 0 then invalid_arg "max_cache_blocks < 0"
end

module Heal = struct
  type t = {
    self_heal : bool;
        (* validate traces at dispatch, quarantine on any detected fault,
           heal corrupted BCG nodes, and walk the degradation ladder *)
    max_rebuilds : int;
        (* quarantines of one entry transition before it is permanently
           blacklisted *)
    backoff : int;
        (* node executions before a quarantined entry may be rebuilt;
           doubles per quarantine of the same entry *)
    demote_after : int; (* detections before dropping a health level *)
    recover_after : int;
        (* consecutive clean dispatches before climbing a health level *)
  }

  let default =
    {
      self_heal = false;
      max_rebuilds = 3;
      backoff = 512;
      demote_after = 3;
      recover_after = 400;
    }

  let validate t =
    if t.max_rebuilds < 1 then invalid_arg "heal_max_rebuilds < 1";
    if t.backoff < 1 then invalid_arg "heal_backoff < 1";
    if t.demote_after < 1 then invalid_arg "heal_demote_after < 1";
    if t.recover_after < 1 then invalid_arg "heal_recover_after < 1"
end

module Faults = struct
  type t = {
    spec : string;
        (* fault-injection schedule DSL (see Faults.parse); "" disables
           injection.  Parsed by the engine at creation. *)
    seed : int; (* PRNG seed of the fault injector *)
  }

  let default = { spec = ""; seed = 1 }

  let validate (_ : t) = ()
end

module Osr = struct
  type t = {
    enabled : bool;
        (* on-stack replacement: guard failures deoptimize to exact
           interpreter state at the failing block (instead of abandoning
           the residue and restarting dispatch from the trace head), and
           hot loop headers are promoted into traces mid-iteration *)
    promote_after : int;
        (* outside-trace dispatches of one loop header before the
           mid-loop promotion fires *)
  }

  let default = { enabled = false; promote_after = 96 }

  let validate t =
    if t.promote_after < 1 then invalid_arg "osr_promote_after < 1"
end

module Tier = struct
  type t = {
    enabled : bool;
        (* the compiled tier: hot traces are lowered to register
           micro-IR (Microir) and dispatched by Backend_microir's
           specialized loop *)
    compile_after : int;
        (* cache uses of one trace before the cost model compiles it —
           the attribution hot-report proxy: a trace entered this often
           dominates dispatch cost *)
    compile_budget : int;
        (* bound on simultaneously compiled traces; exceeding it demotes
           the coldest compiled trace (pinned traces are exempt) *)
  }

  let default = { enabled = false; compile_after = 32; compile_budget = 64 }

  let validate t =
    if t.compile_after < 1 then invalid_arg "tier_compile_after < 1";
    if t.compile_budget < 1 then invalid_arg "tier_compile_budget < 1"
end

module Obs = struct
  type t = {
    spans : bool;
        (* record causal spans (trace builds, heal sweeps, quarantine
           episodes, member turns) into a bounded ring *)
    attribution : bool;
        (* keep per-BCG-block self/inlined dispatch attribution arrays
           (one word per block) for the hot-report *)
    span_buffer : int; (* span ring capacity *)
    hist_buckets : int; (* power-of-two buckets per engine histogram *)
    flightrec_capacity : int;
        (* flight-recorder ring capacity (entries); 0 disarms the
           recorder entirely *)
    ledger : bool;
        (* append a decision-attribution record on every consequential
           engine action (builds, installs, quarantines, evictions,
           tier moves, deopts) — cost proportional to those rare
           actions, not to dispatch *)
  }

  let default =
    {
      spans = false;
      attribution = false;
      span_buffer = 4096;
      hist_buckets = 16;
      flightrec_capacity = 512;
      ledger = true;
    }

  let validate t =
    if t.span_buffer < 2 then invalid_arg "span_buffer < 2";
    if t.hist_buckets < 2 || t.hist_buckets > 62 then
      invalid_arg "hist_buckets out of [2, 62]";
    if t.flightrec_capacity <> 0 && t.flightrec_capacity < 2 then
      invalid_arg "flightrec_capacity must be 0 (off) or >= 2"
end

type t = {
  profile : Profile.t;
  cache : Cache.t;
  heal : Heal.t;
  faults : Faults.t;
  obs : Obs.t;
  osr : Osr.t;
  tier : Tier.t;
  snapshot_period : int;
      (* dispatches between periodic metrics snapshots; 0 disables the
         series (the observability layer's quiescent default) *)
  debug_checks : bool;
      (* run the trace/BCG invariant checks at trace-construction and
         decay boundaries, emitting an event per violation *)
  prune_guards : bool;
      (* run guard-implication pruning on every newly installed trace:
         guards proved implied by entry facts and earlier guards are
         elided (accounted, not checked) by the dispatch loop *)
}

let default =
  {
    profile = Profile.default;
    cache = Cache.default;
    heal = Heal.default;
    faults = Faults.default;
    obs = Obs.default;
    osr = Osr.default;
    tier = Tier.default;
    snapshot_period = 0;
    debug_checks = false;
    prune_guards = false;
  }

(* Leaf accessors: every consumer projects through these, so the nesting
   is a Config-internal detail. *)

let start_state_delay t = t.profile.Profile.start_state_delay
let threshold t = t.profile.Profile.threshold
let decay_period t = t.profile.Profile.decay_period
let counter_max t = t.profile.Profile.counter_max
let max_trace_blocks t = t.profile.Profile.max_trace_blocks
let min_trace_blocks t = t.profile.Profile.min_trace_blocks
let max_walk t = t.profile.Profile.max_walk
let max_backtrack t = t.profile.Profile.max_backtrack
let build_traces t = t.profile.Profile.build_traces
let max_cache_traces t = t.cache.Cache.max_traces
let max_cache_blocks t = t.cache.Cache.max_blocks
let eviction_policy t = t.cache.Cache.eviction_policy
let self_heal t = t.heal.Heal.self_heal
let heal_max_rebuilds t = t.heal.Heal.max_rebuilds
let heal_backoff t = t.heal.Heal.backoff
let heal_demote_after t = t.heal.Heal.demote_after
let heal_recover_after t = t.heal.Heal.recover_after
let fault_spec t = t.faults.Faults.spec
let fault_seed t = t.faults.Faults.seed
let osr_enabled t = t.osr.Osr.enabled
let osr_promote_after t = t.osr.Osr.promote_after
let tier_enabled t = t.tier.Tier.enabled
let tier_compile_after t = t.tier.Tier.compile_after
let tier_compile_budget t = t.tier.Tier.compile_budget
let obs_spans t = t.obs.Obs.spans
let obs_attribution t = t.obs.Obs.attribution
let span_buffer t = t.obs.Obs.span_buffer
let hist_buckets t = t.obs.Obs.hist_buckets
let flightrec_capacity t = t.obs.Obs.flightrec_capacity
let ledger_enabled t = t.obs.Obs.ledger
let snapshot_period t = t.snapshot_period
let debug_checks t = t.debug_checks
let prune_guards t = t.prune_guards

let validate t =
  Profile.validate t.profile;
  if t.snapshot_period < 0 then invalid_arg "snapshot_period < 0";
  Cache.validate t.cache;
  Heal.validate t.heal;
  Faults.validate t.faults;
  Obs.validate t.obs;
  Osr.validate t.osr;
  Tier.validate t.tier

let make ?(start_state_delay = Profile.default.Profile.start_state_delay)
    ?(threshold = Profile.default.Profile.threshold)
    ?(decay_period = Profile.default.Profile.decay_period)
    ?(counter_max = Profile.default.Profile.counter_max)
    ?(max_trace_blocks = Profile.default.Profile.max_trace_blocks)
    ?(min_trace_blocks = Profile.default.Profile.min_trace_blocks)
    ?(max_walk = Profile.default.Profile.max_walk)
    ?(max_backtrack = Profile.default.Profile.max_backtrack)
    ?(build_traces = Profile.default.Profile.build_traces)
    ?(snapshot_period = default.snapshot_period)
    ?(debug_checks = default.debug_checks)
    ?(prune_guards = default.prune_guards)
    ?(max_cache_traces = Cache.default.Cache.max_traces)
    ?(max_cache_blocks = Cache.default.Cache.max_blocks)
    ?(eviction_policy = Cache.default.Cache.eviction_policy)
    ?(self_heal = Heal.default.Heal.self_heal)
    ?(heal_max_rebuilds = Heal.default.Heal.max_rebuilds)
    ?(heal_backoff = Heal.default.Heal.backoff)
    ?(heal_demote_after = Heal.default.Heal.demote_after)
    ?(heal_recover_after = Heal.default.Heal.recover_after)
    ?(fault_spec = Faults.default.Faults.spec)
    ?(fault_seed = Faults.default.Faults.seed)
    ?(osr = Osr.default.Osr.enabled)
    ?(osr_promote_after = Osr.default.Osr.promote_after)
    ?(tier = Tier.default.Tier.enabled)
    ?(tier_compile_after = Tier.default.Tier.compile_after)
    ?(tier_compile_budget = Tier.default.Tier.compile_budget)
    ?(obs_spans = Obs.default.Obs.spans)
    ?(obs_attribution = Obs.default.Obs.attribution)
    ?(span_buffer = Obs.default.Obs.span_buffer)
    ?(hist_buckets = Obs.default.Obs.hist_buckets)
    ?(flightrec_capacity = Obs.default.Obs.flightrec_capacity)
    ?(ledger = Obs.default.Obs.ledger) () =
  let t =
    {
      profile =
        {
          Profile.start_state_delay;
          threshold;
          decay_period;
          counter_max;
          max_trace_blocks;
          min_trace_blocks;
          max_walk;
          max_backtrack;
          build_traces;
        };
      cache =
        {
          Cache.max_traces = max_cache_traces;
          max_blocks = max_cache_blocks;
          eviction_policy;
        };
      heal =
        {
          Heal.self_heal;
          max_rebuilds = heal_max_rebuilds;
          backoff = heal_backoff;
          demote_after = heal_demote_after;
          recover_after = heal_recover_after;
        };
      faults = { Faults.spec = fault_spec; seed = fault_seed };
      obs =
        {
          Obs.spans = obs_spans;
          attribution = obs_attribution;
          span_buffer;
          hist_buckets;
          flightrec_capacity;
          ledger;
        };
      osr = { Osr.enabled = osr; promote_after = osr_promote_after };
      tier =
        {
          Tier.enabled = tier;
          compile_after = tier_compile_after;
          compile_budget = tier_compile_budget;
        };
      snapshot_period;
      debug_checks;
      prune_guards;
    }
  in
  validate t;
  t

let with_threshold t threshold =
  { t with profile = { t.profile with Profile.threshold } }

let with_delay t start_state_delay =
  { t with profile = { t.profile with Profile.start_state_delay } }

let with_profile t profile =
  validate { t with profile };
  { t with profile }

let with_cache t cache =
  validate { t with cache };
  { t with cache }

let with_heal t heal =
  validate { t with heal };
  { t with heal }

let with_faults t faults =
  validate { t with faults };
  { t with faults }

let with_obs t obs =
  validate { t with obs };
  { t with obs }

let with_osr t osr =
  validate { t with osr };
  { t with osr }

let with_tier t tier =
  validate { t with tier };
  { t with tier }

let pp ppf t =
  Format.fprintf ppf "delay=%d threshold=%.2f decay=%d" (start_state_delay t)
    (threshold t) (decay_period t)
