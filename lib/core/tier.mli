(** The compiled tier's policy layer: lowering hot traces to micro-IR
    ({!Microir}) with the analysis facts wired in, validating lowered
    bodies by re-derivation (TL220), and the cost model that decides
    which traces hold the {!Config.Tier} budget's compiled slots.

    The heat signal is the cache's per-entry use count — the same number
    the hot-report ranks by and footprint-aware eviction divides by, and
    the one piece of tier-relevant state a warm-start snapshot persists
    ([snap_heat]).  Runtime promotion and restore-time recompilation key
    on the same counter, which is what makes the tier re-derivable:
    snapshots never store a lowered body. *)

val trace_blocks_code :
  Cfg.Layout.t -> Trace.t -> (Cfg.Layout.gid * Bytecode.Instr.t array) array
(** The trace's positions as (gid, instructions) pairs — the micro-IR
    converter's input, kept per-position so guards land between
    blocks. *)

val lower_trace : Cfg.Layout.t -> Trace.t -> Microir.body
(** Lower the trace's block sequence to micro-IR, feeding the converter
    {!Analysis.Constprop} block-entry facts as the constant oracle and a
    {!Analysis.Liveness}-derived trailing-store license (slot dead at
    the trace seam, no handler-covered position at or after the store).
    Pure: does not touch [tr.lowered]. *)

val check_lowered :
  ?context:string -> Cfg.Layout.t -> Trace.t -> Analysis.Diag.t list
(** TL220: validate the trace's cached lowered body, if any — structural
    invariants ({!Microir.check} against the trace's block sequence),
    then re-derivation ([lower_trace] must reproduce the cached op
    stream exactly).  Empty for traces on the interpreted tier. *)

val maybe_compile :
  Config.t ->
  Cfg.Layout.t ->
  Trace_cache.t ->
  events:Events.t ->
  Trace.t ->
  int * int
(** Promotion decision at trace entry; returns the [(compiled, demoted)]
    increments for the caller's counters (each [0] or [1]).  The
    candidate must be uncompiled and have crossed
    [Config.tier_compile_after] uses.  When [tier_compile_budget] is
    full, the coldest compiled trace is demoted first — only when
    strictly colder than the candidate (no thrash between equally hot
    traces) and not pinned; if the budget is still full after that the
    candidate stays interpreted and may retry on a later entry.  Emits
    [Trace_compiled] / [Tier_demoted].  No-op with the tier off. *)

val recompile_restored :
  Config.t -> Cfg.Layout.t -> Trace_cache.t -> events:Events.t -> int
(** Restore-time tier re-derivation: recompile the hottest restored
    traces that cross [compile_after], hottest first (trace id breaks
    ties), up to the budget; returns the number compiled.  Because
    promotion keys on the persisted heat, a restored cache converges on
    the same compiled set as the run that snapshotted it. *)
