(** A typed event stream over the engine's lifecycle.

    Every interesting moment of a run — a profiler signal, a trace being
    (re)constructed, entered, completed or side-exited, a decay pass, a
    periodic metrics snapshot — is published here as a typed event,
    stamped with the dispatch index it happened at.  The stream is the
    qualitative half of the observability layer ({!Metrics} is the
    quantitative half): end-of-run totals say {e how many} traces
    completed, the stream says {e when}.

    {2 Cost discipline}

    The stream is {e disabled} while it has no subscribers, and every
    emission site guards both the [emit] call and the construction of
    the event payload behind {!enabled}:

    {[
      if Events.enabled evs then
        Events.emit evs (Events.Trace_entered { trace_id; chained })
    ]}

    so a run without subscribers allocates nothing and pays one
    predictable branch per emission point.  Subscribers are invoked
    synchronously, in subscription order. *)

type evict_reason =
  | Capacity
      (** the {!Config.Cache} bounds were exceeded and a victim chosen by
          the configured policy was dropped *)
  | Pressure
      (** an injected allocation-pressure fault ([FT007]) forced an
          LRU eviction *)
  | Quarantine
      (** the trace was removed because its entry transition was
          quarantined or blacklisted *)
  | Footprint
      (** allocation pressure forced an eviction under the
          footprint-aware policy: the victim had the worst
          bytes-per-entry (footprint/heat) ratio, not the oldest
          stamp *)

val evict_reason_to_string : evict_reason -> string
(** Stable lowercase tag: ["capacity"] / ["pressure"] / ["quarantine"] /
    ["footprint"] — the ["reason"] field of the JSONL schema. *)

type payload =
  | Signal_raised of {
      x : Cfg.Layout.gid;
      y : Cfg.Layout.gid;  (** the signalled branch node [N_XY] *)
      old_state : State.t;
      new_state : State.t;
      best_changed : bool;
    }
      (** A branch crossed the followable boundary or a followable
          branch's maximally correlated successor changed — the trigger
          for trace (re)construction. *)
  | Trace_constructed of {
      trace_id : int;
      first : Cfg.Layout.gid;  (** entry context block *)
      n_blocks : int;
      n_instrs : int;
      prob : float;  (** expected completion probability at construction *)
      reused : bool;
          (** [true] when the reconstruction was satisfied by an
              identical cached trace (hash-cons hit) *)
    }
  | Trace_replaced of {
      first : Cfg.Layout.gid;
      head : Cfg.Layout.gid;  (** the rebound entry transition *)
      trace_id : int;  (** the trace now installed at that entry *)
    }
      (** An entry transition was rebound to a different trace — the
          cache-instability event counted by
          {!Trace_cache.n_replaced}. *)
  | Trace_entered of {
      trace_id : int;
      chained : bool;
          (** the previous dispatch completed another trace
              (Dynamo-style linking) *)
    }
  | Side_exit of {
      trace_id : int;
      at_block : int;  (** index in the trace where execution diverged *)
      matched_blocks : int;
      matched_instrs : int;
    }
  | Trace_completed of { trace_id : int; n_blocks : int; n_instrs : int }
  | Decay_pass of { decays : int }
      (** The BCG ran one or more periodic decay passes during this
          dispatch; [decays] is the cumulative pass count. *)
  | Phase_snapshot of Metrics.snapshot
      (** The metrics registry took a periodic snapshot. *)
  | Invariant_violation of {
      code : string;  (** stable check code, e.g. ["TL204"] *)
      severity : string;  (** ["error"] / ["warning"] / ["info"] *)
      message : string;  (** rendered diagnostic, location included *)
    }
      (** A {!Config.t.debug_checks} run found a trace/BCG invariant
          violation.  The payload is pre-rendered strings so the stream
          does not depend on the analysis library's diagnostic type. *)
  | Fault_injected of {
      code : string;  (** catalogue code, e.g. ["FT001"] *)
      detail : string;  (** what was corrupted, human-readable *)
    }  (** The fault injector ([Faults]) applied one fault. *)
  | Trace_quarantined of {
      trace_id : int;
      first : Cfg.Layout.gid;
      head : Cfg.Layout.gid;  (** the blacklisted entry transition *)
      code : string;  (** the TL2xx check that condemned it *)
      attempts : int;  (** quarantines of this entry so far *)
      until : int;
          (** cache clock before a rebuild may be attempted;
              [max_int] = permanently blacklisted *)
    }
      (** A trace failed validation (or a sweep found it corrupted) and
          was removed from the cache with its entry blacklisted. *)
  | Trace_evicted of {
      trace_id : int;
      first : Cfg.Layout.gid;
      head : Cfg.Layout.gid;
      n_live : int;  (** live traces after the eviction *)
      reason : evict_reason;  (** why the trace left the cache *)
    }
      (** A trace was removed from the cache: capacity pressure
          ({!Config.Cache}), an injected allocation-pressure fault, or a
          quarantine/blacklist of its entry transition.  [Capacity],
          [Pressure] and [Footprint] removals count toward
          {!Trace_cache.n_evicted} — [Quarantine] removals are counted
          by {!Trace_cache.n_quarantined} and carry their own
          [Trace_quarantined] event alongside. *)
  | Mode_degraded of { from_level : Health.level; to_level : Health.level }
      (** Repeated detections dropped the engine one level down the
          degradation ladder. *)
  | Mode_recovered of { from_level : Health.level; to_level : Health.level }
      (** A full window of clean dispatches climbed the engine one level
          back up. *)
  | Cache_restored of {
      traces : int;  (** traces rebound from the snapshot *)
      cache_blocks : int;  (** block slots they occupy *)
      bcg_nodes : int;
      bcg_edges : int;  (** BCG population after the restore *)
    }
      (** A warm-start snapshot was accepted and installed
          ({!Engine.restore}). *)
  | Snapshot_rejected of { reason : string }
      (** A warm-start snapshot failed validation and was discarded
          without touching the cache or BCG; [reason] is the rendered
          {!Persist.error}. *)
  | Guards_pruned of {
      trace_id : int;
      pruned : int;  (** guard positions proved implied and elidable *)
      guards : int;  (** guard positions in the trace (its block count) *)
    }
      (** [Trace_prover] derived a non-empty guard-implication pruning
          for a newly installed trace ({!Config.t.prune_guards}). *)
  | Deopt_entered of {
      trace_id : int;
      at_block : int;
          (** trace position of the failed or abandoned guard *)
      resume_block : int;
          (** gid block dispatch resumes at ([-1] when unknown — e.g. a
              mid-flight condemnation with no interpreter handle
              attached) *)
      residue_blocks : int;
          (** trace positions abandoned past [at_block] — the work a
              non-OSR side exit would have thrown away *)
      reason : string;
          (** ["guard-failure"] (organic mismatch), ["guard-flip"]
              (FT008), or ["condemned"] (mid-flight cut-over) *)
    }
      (** OSR deoptimization: the engine abandoned the active trace and
          resumed block dispatch at the materialized interpreter state
          ({!Config.Osr.t.enabled}). *)
  | Osr_promoted of {
      trace_id : int;
      header : Cfg.Layout.gid;  (** the promoted loop's header block *)
      latch : Cfg.Layout.gid;
          (** the back-edge source the trace is entered from *)
      hotness : int;  (** header dispatches that triggered the promotion *)
    }
      (** OSR promotion: a hot loop was promoted into a freshly built
          trace mid-iteration; the trace is entered at [header] on the
          very next back-edge. *)
  | Trace_compiled of {
      trace_id : int;
      ops : int;  (** micro-ops in the lowered body *)
      fused : int;  (** superinstructions formed *)
      src_instrs : int;  (** source bytecode instructions lowered *)
    }
      (** The tier cost model promoted a hot trace to the compiled tier:
          its blocks were lowered to register micro-IR
          ({!Config.Tier}). *)
  | Tier_demoted of {
      trace_id : int;
      uses : int;  (** cache heat at demotion — the losing bid *)
    }
      (** A compiled trace lost its compiled-tier slot to a hotter
          candidate under [compile_budget]; its lowered body was
          dropped (the source view stays cached). *)

type event = { time : int; payload : payload }
(** [time] is the engine's dispatch index (block + trace dispatches) at
    emission. *)

type t
(** A stream: an ordered set of subscribers and a logical clock. *)

type subscription

val create : unit -> t

val enabled : t -> bool
(** [true] iff the stream has at least one subscriber or a tap.
    Emission sites must guard payload construction behind this. *)

val subscribe : t -> (event -> unit) -> subscription
(** Subscribers are called synchronously, in subscription order. *)

val unsubscribe : t -> subscription -> unit
(** Unknown or already-removed subscriptions are ignored. *)

val n_subscribers : t -> int
(** Taps are not subscribers; see {!set_tap}. *)

val set_tap : t -> (event -> unit) -> unit
(** Install the out-of-band observer (the flight recorder's intake).
    The tap sees every event before the subscribers do, enables the
    stream like a subscriber would, but is invisible to
    {!n_subscribers} and {!emitted} — user-facing "is anyone
    listening?" semantics are unchanged by an armed recorder.  At most
    one tap; installing again replaces it. *)

val clear_tap : t -> unit

val set_now : t -> int -> unit
(** Advance the logical clock; events emitted afterwards carry this
    time. *)

val now : t -> int

val emit : t -> payload -> unit
(** Deliver to every subscriber; a no-op when disabled. *)

val emitted : t -> int
(** Events delivered to subscribers so far. *)

val kind : payload -> string
(** Stable lowercase tag naming the constructor ("signal_raised",
    "trace_entered", …) — the ["event"] field of the JSONL schema. *)
