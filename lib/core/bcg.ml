module Layout = Cfg.Layout

(* The branch correlation graph (paper §3.5, §4.1).

   There is one node [N_XY] for every pair of basic blocks (X, Y) observed
   executing in sequence, and one edge [E_XYZ] from N_XY to N_YZ for every
   observed triple — the edge counter measures how often the branch (Y, Z)
   follows the branch (X, Y), i.e. a depth-one per-address history table.

   Counters are 16-bit and saturating.  Every [decay_period] executions of a
   node, all of its edge weights are shifted right one bit (periodic
   exponential decay, halving the weight of history); edges whose weight
   reaches zero are pruned, which is how a node can become [Unique] again
   after a phase change.  During decay the node's state and maximally
   correlated successor are re-evaluated; if either changed, a signal is
   raised to the trace cache. *)

type node = {
  n_x : Layout.gid;
  n_y : Layout.gid;
  mutable exec_total : int; (* lifetime executions, for statistics *)
  mutable delay_left : int; (* start-state countdown *)
  mutable since_decay : int;
  mutable state : State.t;
  mutable edges : edge list; (* successor correlations; usually 1-3 long *)
  mutable best : edge option; (* inline cache: current most-likely successor *)
  mutable best_at_recheck : Layout.gid;
    (* the maximally correlated successor as of the last recheck; the
       paper's "maximally correlated branch changed" signal compares
       against this snapshot, not the live inline cache (-1 = none) *)
  mutable preds : node list; (* nodes with an edge into this one *)
}

and edge = {
  e_z : Layout.gid; (* the successor block: this edge targets N_YZ *)
  e_target : node;
  mutable weight : int;
}

type signal = {
  s_node : node;
  s_old_state : State.t;
  s_new_state : State.t;
  s_best_changed : bool;
}

type t = {
  config : Config.t;
  n_blocks : int;
  nodes : (int, node) Hashtbl.t; (* key = x * n_blocks + y *)
  on_signal : signal -> unit;
  mutable node_count : int;
  mutable edge_count : int;
  mutable decays : int; (* decay passes performed, for statistics *)
  mutable signals : int;
}

let create (config : Config.t) ~n_blocks ~on_signal =
  Config.validate config;
  {
    config;
    n_blocks;
    nodes = Hashtbl.create 4096;
    on_signal;
    node_count = 0;
    edge_count = 0;
    decays = 0;
    signals = 0;
  }

let key t x y = (x * t.n_blocks) + y

let find_node t ~x ~y = Hashtbl.find_opt t.nodes (key t x y)

(* Sum of outgoing edge weights: the denominator of every correlation. *)
let total_weight (n : node) =
  List.fold_left (fun acc e -> acc + e.weight) 0 n.edges

(* Correlation of one successor: the probability of taking branch (Y, Z)
   given that the last branch taken was (X, Y). *)
let correlation (n : node) (e : edge) =
  let total = total_weight n in
  if total = 0 then 0.0 else float_of_int e.weight /. float_of_int total

let best_edge (n : node) : edge option =
  match n.edges with
  | [] -> None
  | [ e ] -> Some e
  | e0 :: rest ->
      Some
        (List.fold_left (fun acc e -> if e.weight > acc.weight then e else acc)
           e0 rest)

(* Evaluate the state of a hot node from its current edges. *)
let evaluate_state t (n : node) : State.t * edge option =
  match n.edges with
  | [] -> (State.Weakly_correlated, None)
  | [ e ] -> (State.Unique, Some e)
  | _ -> (
      match best_edge n with
      | None -> (State.Weakly_correlated, None)
      | Some e ->
          let c = correlation n e in
          if c >= Config.threshold t.config then
            (State.Strongly_correlated, Some e)
          else (State.Weakly_correlated, Some e))

(* Re-evaluate state and best successor; raise a signal if either changed.
   Called at start-state promotion and during decay. *)
(* A state change is signalled to the trace cache when it could affect a
   trace: the branch moved across the followable boundary (unique/strong
   vs. weak/new — a unique<->strong transition changes nothing the trace
   cache acts on, which is why at a 100% threshold the two states are
   indistinguishable), or the maximally correlated successor of a
   followable branch changed. *)
let recheck t (n : node) =
  let old_state = n.state in
  let old_best_gid = n.best_at_recheck in
  let new_state, new_best = evaluate_state t n in
  n.state <- new_state;
  n.best <- new_best;
  let best_gid = function None -> -1 | Some e -> e.e_z in
  n.best_at_recheck <- best_gid new_best;
  let best_changed = old_best_gid <> best_gid new_best in
  let followable_changed =
    State.is_followable old_state <> State.is_followable new_state
  in
  if followable_changed || (State.is_followable new_state && best_changed)
  then begin
    t.signals <- t.signals + 1;
    t.on_signal
      {
        s_node = n;
        s_old_state = old_state;
        s_new_state = new_state;
        s_best_changed = best_changed;
      }
  end

let remove_pred (n : node) ~(pred : node) =
  n.preds <- List.filter (fun p -> p != pred) n.preds

(* Periodic exponential decay: shift this node's edge weights right one bit,
   prune dead edges, then recheck the node's correlation state. *)
let decay t (n : node) =
  t.decays <- t.decays + 1;
  let live, dead =
    List.iter (fun e -> e.weight <- e.weight lsr 1) n.edges;
    List.partition (fun e -> e.weight > 0) n.edges
  in
  n.edges <- live;
  List.iter
    (fun e ->
      t.edge_count <- t.edge_count - 1;
      remove_pred e.e_target ~pred:n)
    dead;
  recheck t n

let make_node t ~x ~y =
  let n =
    {
      n_x = x;
      n_y = y;
      exec_total = 0;
      delay_left = Config.start_state_delay t.config;
      since_decay = 0;
      state = State.Newly_created;
      edges = [];
      best = None;
      best_at_recheck = -1;
      preds = [];
    }
  in
  Hashtbl.replace t.nodes (key t x y) n;
  t.node_count <- t.node_count + 1;
  n

(* Record one execution of branch (x, y): the block y was just dispatched
   after block x.  Returns the (possibly fresh) node so the profiler can
   keep it as the new branch context. *)
let visit_node t ~x ~y : node =
  let n =
    match find_node t ~x ~y with Some n -> n | None -> make_node t ~x ~y
  in
  n.exec_total <- n.exec_total + 1;
  (* start-state countdown; promotion out of the newly-created state
     re-evaluates correlations and may raise the node's first signal *)
  if n.delay_left > 0 then begin
    n.delay_left <- n.delay_left - 1;
    if n.delay_left = 0 then recheck t n
  end
  else begin
    n.since_decay <- n.since_decay + 1;
    if n.since_decay >= Config.decay_period t.config then begin
      n.since_decay <- 0;
      decay t n
    end
  end;
  n

let find_edge (n : node) z =
  let rec go = function
    | [] -> None
    | e :: rest -> if e.e_z = z then Some e else go rest
  in
  go n.edges

(* One observed branch event is worth 256 counter units, so a single
   observation survives log2(256) = 8 decay shifts — the paper's "it takes
   up to 2048 = 256 log2 256 iterations to completely clear a history".
   This is what keeps a once-in-a-while loop exit visible in the
   correlations (and the loop's node merely *strongly* correlated rather
   than unique) instead of evaporating at the first decay. *)
let event_weight = 256

(* Record that branch (y, z) followed branch (x, y): bump (or create) edge
   E_XYZ from [ctx] = N_XY to [target] = N_YZ.  Saturating 16-bit counter. *)
let record_successor t ~(ctx : node) ~(target : node) =
  let z = target.n_y in
  let bumped =
    match find_edge ctx z with
    | Some e ->
        e.weight <- min (e.weight + event_weight) (Config.counter_max t.config);
        e
    | None ->
        let e = { e_z = z; e_target = target; weight = event_weight } in
        ctx.edges <- e :: ctx.edges;
        t.edge_count <- t.edge_count + 1;
        if not (List.memq ctx target.preds) then
          target.preds <- ctx :: target.preds;
        e
  in
  (* keep the inline cache current: the cached most-likely successor is
     replaced as soon as another edge overtakes it.  State signals are
     still only raised at the periodic recheck, as in the paper. *)
  match ctx.best with
  | Some b when b.weight >= bumped.weight -> ()
  | Some _ | None -> ctx.best <- Some bumped

(* Self-healing: clamp a node's counters and bookkeeping back into their
   legal ranges, then recheck so the inline cache and correlation state
   are recomputed from the (repaired) edges.  Called by the engine on
   nodes a TL2xx check flagged — a corrupted counter loses its history
   but the node keeps profiling, which is the graceful outcome: the
   correlations re-converge within one decay period. *)
let heal_node t (n : node) : bool =
  let repaired = ref false in
  let clamp lo hi v =
    let v' = max lo (min hi v) in
    if v' <> v then repaired := true;
    v'
  in
  List.iter
    (fun e -> e.weight <- clamp 1 (Config.counter_max t.config) e.weight)
    n.edges;
  n.since_decay <- clamp 0 (Config.decay_period t.config - 1) n.since_decay;
  n.delay_left <- clamp 0 (Config.start_state_delay t.config) n.delay_left;
  if n.delay_left > 0 <> (n.state = State.Newly_created) then begin
    (* trust the state over the countdown: a promoted node stays promoted *)
    n.delay_left <- (if n.state = State.Newly_created then 1 else 0);
    repaired := true
  end;
  (* recompute state and best from the repaired edges; signals fire as
     usual, so the trace machinery reacts to any correlation change *)
  recheck t n;
  (* recheck may itself promote the node out of its start state; keep the
     countdown consistent with the recomputed state (not a repair — the
     mismatch did not pre-exist) so healing converges in one call *)
  if n.delay_left > 0 <> (n.state = State.Newly_created) then
    n.delay_left <- (if n.state = State.Newly_created then 1 else 0);
  !repaired

(* Warm-start snapshots.  A snapshot flattens the graph — nodes with
   their counters and correlation state, edges as (successor, weight)
   pairs — in canonical order (nodes by (x, y), edges by z), so snapshot
   → restore → snapshot is bit-identical.  Restoring rebuilds the edge
   and predecessor pointers and the inline caches without raising any
   signal: the graph resumes exactly where it stopped, and the trace
   cache half of the same snapshot already holds the traces those
   signals built. *)

type node_snap = {
  ns_x : Layout.gid;
  ns_y : Layout.gid;
  ns_exec_total : int;
  ns_delay_left : int;
  ns_since_decay : int;
  ns_state : State.t;
  ns_best_at_recheck : Layout.gid;
  ns_edges : (Layout.gid * int) list; (* (z, weight), sorted by z *)
}

let snapshot t : node_snap list =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ (n : node) ->
      let edges =
        List.map (fun e -> (e.e_z, e.weight)) n.edges
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      acc :=
        {
          ns_x = n.n_x;
          ns_y = n.n_y;
          ns_exec_total = n.exec_total;
          ns_delay_left = n.delay_left;
          ns_since_decay = n.since_decay;
          ns_state = n.state;
          ns_best_at_recheck = n.best_at_recheck;
          ns_edges = edges;
        }
        :: !acc)
    t.nodes;
  List.sort
    (fun a b -> compare (a.ns_x, a.ns_y) (b.ns_x, b.ns_y))
    !acc

let restore t (snaps : node_snap list) =
  if t.node_count > 0 then invalid_arg "Bcg.restore: non-empty graph";
  (* first pass: materialise every node with its scalar state *)
  List.iter
    (fun s ->
      let n = make_node t ~x:s.ns_x ~y:s.ns_y in
      n.exec_total <- s.ns_exec_total;
      n.delay_left <- s.ns_delay_left;
      n.since_decay <- s.ns_since_decay;
      n.state <- s.ns_state;
      n.best_at_recheck <- s.ns_best_at_recheck)
    snaps;
  (* second pass: rebuild edges, predecessor lists and inline caches *)
  List.iter
    (fun s ->
      match find_node t ~x:s.ns_x ~y:s.ns_y with
      | None -> assert false
      | Some n ->
          List.iter
            (fun (z, w) ->
              match find_node t ~x:s.ns_y ~y:z with
              | None ->
                  invalid_arg "Bcg.restore: edge target is not in the snapshot"
              | Some target ->
                  let e = { e_z = z; e_target = target; weight = w } in
                  n.edges <- e :: n.edges;
                  t.edge_count <- t.edge_count + 1;
                  if not (List.memq n target.preds) then
                    target.preds <- n :: target.preds)
            s.ns_edges;
          n.edges <- List.rev n.edges;
          n.best <- best_edge n)
    snaps

(* Inspection helpers *)

let iter_nodes t f = Hashtbl.iter (fun _ n -> f n) t.nodes

let n_nodes t = t.node_count

let n_edges t = t.edge_count

let pp_node layout ppf (n : node) =
  Format.fprintf ppf "N(%s -> %s) state=%a execs=%d edges=[%s]"
    (Layout.describe layout n.n_x)
    (Layout.describe layout n.n_y)
    State.pp n.state n.exec_total
    (String.concat "; "
       (List.map
          (fun e ->
            Printf.sprintf "%s w=%d" (Layout.describe layout e.e_z) e.weight)
          n.edges))
