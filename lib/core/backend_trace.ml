(* Trace-cache dispatch (Health.Full_tracing with Config.build_traces):
   the complete system of the paper.

   A block dispatched outside any trace first consults the cache by its
   entering transition: a hit is one *trace* dispatch (the hook runs
   once, the trace's interior blocks are inlined), a miss is an ordinary
   profiled block dispatch.  Under self-healing every candidate trace is
   validated before entry; a condemned trace is quarantined and counts
   as a strike against the ladder, and the block falls back to a normal
   dispatch. *)

let name = "trace"

let describe = "trace-cache dispatch over the profiled block stream"

let enter (ctx : Backend.ctx) (tr : Trace.t) g =
  ctx.Backend.trace_dispatches <- ctx.Backend.trace_dispatches + 1;
  ctx.Backend.traces_entered <- ctx.Backend.traces_entered + 1;
  let chained = ctx.Backend.just_completed in
  if chained then ctx.Backend.chained_entries <- ctx.Backend.chained_entries + 1;
  ctx.Backend.just_completed <- false;
  tr.Trace.entered <- tr.Trace.entered + 1;
  if Events.enabled ctx.Backend.events then
    Events.emit ctx.Backend.events
      (Events.Trace_entered { trace_id = tr.Trace.id; chained });
  (* the single profiling statement of a trace dispatch *)
  Profiler.dispatch ctx.Backend.profiler g;
  Backend.note_executed ctx g;
  Backend.attr_inline ctx g;
  ctx.Backend.matched_blocks <- 1;
  ctx.Backend.matched_instrs <- tr.Trace.instr_len.(0);
  if Trace.n_blocks tr = 1 then begin
    (* degenerate single-block trace: completes immediately *)
    ctx.Backend.active <- None;
    Backend.finish_completed ctx tr
  end
  else begin
    ctx.Backend.active <- Some tr;
    ctx.Backend.active_pos <- 1
  end

let step (ctx : Backend.ctx) g =
  Backend.prologue ctx;
  let self_heal = Config.self_heal ctx.Backend.config in
  let candidate =
    Trace_cache.lookup ctx.Backend.cache ~prev:ctx.Backend.prev ~cur:g
  in
  let candidate, detected =
    match candidate with
    | Some tr when self_heal -> (
        match
          Backend.validate_dispatch ctx tr ~prev:ctx.Backend.prev ~cur:g
        with
        | None -> (Some tr, false)
        | Some code ->
            (* condemned at dispatch: quarantine the entry and strike
               the ladder, then dispatch the block normally *)
            ignore (Backend.condemn ctx ~first:ctx.Backend.prev ~head:g ~code);
            Backend.apply_health ctx (Health.strike ctx.Backend.health);
            (None, true))
    | c -> (c, false)
  in
  (match candidate with
  | Some tr -> enter ctx tr g
  | None ->
      ctx.Backend.block_dispatches <- ctx.Backend.block_dispatches + 1;
      ctx.Backend.just_completed <- false;
      Backend.attr_step ctx g;
      Profiler.dispatch ctx.Backend.profiler g;
      Backend.note_executed ctx g);
  if self_heal && not detected then
    Backend.apply_health ctx (Health.clean_dispatch ctx.Backend.health)

let on_block ctx g = Backend.observe ~step ctx g

let stats_into (ctx : Backend.ctx) (s : Stats.t) =
  let static_traces = ref 0 in
  let static_blocks = ref 0 in
  Trace_cache.iter_all ctx.Backend.cache (fun tr ->
      if tr.Trace.completed > 0 then begin
        incr static_traces;
        static_blocks := !static_blocks + Trace.n_blocks tr
      end);
  {
    s with
    Stats.trace_dispatches = ctx.Backend.trace_dispatches;
    traces_entered = ctx.Backend.traces_entered;
    traces_completed = ctx.Backend.traces_completed;
    completed_blocks = ctx.Backend.completed_blocks;
    partial_blocks = ctx.Backend.partial_blocks;
    completed_instrs = ctx.Backend.completed_instrs;
    partial_instrs = ctx.Backend.partial_instrs;
    traces_constructed = ctx.Backend.traces_constructed;
    traces_replaced = Trace_cache.n_replaced ctx.Backend.cache;
    traces_live = Trace_cache.n_live ctx.Backend.cache;
    static_traces = !static_traces;
    static_blocks = !static_blocks;
    chained_entries = ctx.Backend.chained_entries;
    guards_checked = ctx.Backend.guards_checked;
    guards_elided = ctx.Backend.guards_elided;
    guards_pruned = ctx.Backend.guards_pruned;
  }
