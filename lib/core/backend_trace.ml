(* Trace-cache dispatch (Health.Full_tracing with Config.build_traces):
   the complete system of the paper.

   A block dispatched outside any trace first consults the cache by its
   entering transition: a hit is one *trace* dispatch (the hook runs
   once, the trace's interior blocks are inlined), a miss is an ordinary
   profiled block dispatch.  Under self-healing every candidate trace is
   validated before entry; a condemned trace is quarantined and counts
   as a strike against the ladder, and the block falls back to a normal
   dispatch. *)

let name = "trace"

let describe = "trace-cache dispatch over the profiled block stream"

let enter (ctx : Backend.ctx) (tr : Trace.t) g =
  (* executing traces are pinned against eviction and quarantine for the
     duration of the dispatch; finish_completed/finish_partial unpin *)
  Trace_cache.pin ctx.Backend.cache tr;
  ctx.Backend.trace_dispatches <- ctx.Backend.trace_dispatches + 1;
  ctx.Backend.traces_entered <- ctx.Backend.traces_entered + 1;
  (match ctx.Backend.osr with
  | Some osr -> Osr.note_entry osr ~trace_id:tr.Trace.id
  | None -> ());
  let chained = ctx.Backend.just_completed in
  if chained then ctx.Backend.chained_entries <- ctx.Backend.chained_entries + 1;
  ctx.Backend.just_completed <- false;
  tr.Trace.entered <- tr.Trace.entered + 1;
  if Events.enabled ctx.Backend.events then
    Events.emit ctx.Backend.events
      (Events.Trace_entered { trace_id = tr.Trace.id; chained });
  (* the single profiling statement of a trace dispatch *)
  Profiler.dispatch ctx.Backend.profiler g;
  Backend.note_executed ctx g;
  Backend.attr_inline ctx g;
  ctx.Backend.matched_blocks <- 1;
  ctx.Backend.matched_instrs <- tr.Trace.instr_len.(0);
  if Trace.n_blocks tr = 1 then begin
    (* degenerate single-block trace: completes immediately *)
    ctx.Backend.active <- None;
    Backend.finish_completed ctx tr
  end
  else begin
    ctx.Backend.active <- Some tr;
    ctx.Backend.active_pos <- 1
  end

(* OSR mid-loop promotion: a hot header crossed its threshold while we
   were dispatching blocks — build its loop trace immediately, so the
   very next latch->header transition enters it.  Mirrors the engine's
   signal glue (span, counter folding, construction-boundary sweep), but
   fires from the dispatch loop rather than a profiler signal. *)
let promote_loop (ctx : Backend.ctx) (osr : Osr.t) header ~hotness =
  let span =
    match ctx.Backend.spans with
    | Some s ->
        Spans.begin_span s ~kind:Spans.Trace_build
          ~label:(Printf.sprintf "osr promote header %d" header)
          ~now:(Backend.clock ctx)
    | None -> -1
  in
  let outcome, installed =
    Trace_builder.promote ~events:ctx.Backend.events
      ~on_path:(fun n -> Metrics.record ctx.Backend.h_build_len n)
      ctx.Backend.config ctx.Backend.cache
      (Profiler.bcg ctx.Backend.profiler)
      ~header
  in
  ctx.Backend.traces_constructed <-
    ctx.Backend.traces_constructed + outcome.Trace_builder.new_traces;
  ctx.Backend.builder_reuses <-
    ctx.Backend.builder_reuses + outcome.Trace_builder.reused_traces;
  ctx.Backend.guards_pruned <-
    ctx.Backend.guards_pruned + outcome.Trace_builder.pruned_guards;
  let installed_id =
    match installed with Some tr -> tr.Trace.id | None -> -1
  in
  Backend.ledger_record ctx ~trace_id:installed_id ~head:header
    (Ledger.Build
       {
         new_traces = outcome.Trace_builder.new_traces;
         reused = outcome.Trace_builder.reused_traces;
         pruned = outcome.Trace_builder.pruned_guards;
       });
  if outcome.Trace_builder.pruned_guards > 0 then
    Backend.ledger_record ctx ~trace_id:installed_id ~head:header
      (Ledger.Guard_prune { pruned = outcome.Trace_builder.pruned_guards });
  (match installed with
  | Some tr ->
      Osr.note_promotion osr ~trace_id:tr.Trace.id;
      if Events.enabled ctx.Backend.events then
        Events.emit ctx.Backend.events
          (Events.Osr_promoted
             {
               trace_id = tr.Trace.id;
               header;
               latch = tr.Trace.first;
               hotness;
             });
      Backend.ledger_record ctx ~trace_id:tr.Trace.id
        ~first:tr.Trace.first ~head:header
        (Ledger.Osr_promote { header; latch = tr.Trace.first; hotness })
  | None -> ());
  (* trace-construction boundary *)
  if
    outcome.Trace_builder.new_traces > 0
    && Config.debug_checks ctx.Backend.config
  then Backend.run_debug_checks ctx;
  (match ctx.Backend.spans with
  | Some s -> Spans.end_span s span ~now:(Backend.clock ctx)
  | None -> ());
  installed <> None

(* Returns whether a promotion installed a trace, so [step] knows to
   retry its cache lookup. *)
let poll_promote (ctx : Backend.ctx) g =
  match ctx.Backend.osr with
  | None -> false
  | Some osr -> (
      let promote = Config.build_traces ctx.Backend.config in
      match Backend_profile.hot_loop ctx g ~promote with
      | Some hotness -> promote_loop ctx osr g ~hotness
      | None -> false)

let poll_osr (ctx : Backend.ctx) g = ignore (poll_promote ctx g)

(* The dispatch decision, parameterized over the entry action so
   Backend_microir can reuse the whole skeleton (lookup, mid-loop
   promotion retry, dispatch validation, ladder accounting) and change
   only what happens on a hit. *)
let step_with ~enter (ctx : Backend.ctx) g =
  Backend.prologue ctx;
  let self_heal = Config.self_heal ctx.Backend.config in
  let candidate =
    Trace_cache.lookup ctx.Backend.cache ~prev:ctx.Backend.prev ~cur:g
  in
  (* hot-loop heat accumulates only on uncovered dispatches: a loop
     already running under trace dispatch has nothing to promote, and a
     loop that loses coverage (eviction, quarantine) starts re-heating
     the moment its header misses again.  When the miss that crossed the
     threshold is itself the latch->header transition, the freshly
     promoted trace is entered by this very dispatch. *)
  let candidate =
    match candidate with
    | Some _ -> candidate
    | None ->
        if poll_promote ctx g then
          Trace_cache.lookup ctx.Backend.cache ~prev:ctx.Backend.prev ~cur:g
        else None
  in
  let candidate, detected =
    match candidate with
    | Some tr when self_heal -> (
        match
          Backend.validate_dispatch ctx tr ~prev:ctx.Backend.prev ~cur:g
        with
        | None -> (Some tr, false)
        | Some code ->
            (* condemned at dispatch: quarantine the entry and strike
               the ladder, then dispatch the block normally *)
            ignore (Backend.condemn ctx ~first:ctx.Backend.prev ~head:g ~code);
            Backend.apply_health ctx (Health.strike ctx.Backend.health);
            (None, true))
    | c -> (c, false)
  in
  (match candidate with
  | Some tr -> enter ctx tr g
  | None ->
      ctx.Backend.block_dispatches <- ctx.Backend.block_dispatches + 1;
      ctx.Backend.just_completed <- false;
      Backend.attr_step ctx g;
      Profiler.dispatch ctx.Backend.profiler g;
      Backend.note_executed ctx g);
  if self_heal && not detected then
    Backend.apply_health ctx (Health.clean_dispatch ctx.Backend.health)

let step (ctx : Backend.ctx) g = step_with ~enter ctx g

(* A deopt resume is a profiled block dispatch that never consults the
   cache: the engine just abandoned a trace at this block, and
   re-entering one at the deopt transition would defeat the resume. *)
let deopt_resume (ctx : Backend.ctx) g =
  Backend.prologue ctx;
  ctx.Backend.block_dispatches <- ctx.Backend.block_dispatches + 1;
  ctx.Backend.just_completed <- false;
  Backend.attr_step ctx g;
  Profiler.dispatch ctx.Backend.profiler g;
  Backend.note_executed ctx g;
  if Config.self_heal ctx.Backend.config then
    Backend.apply_health ctx (Health.clean_dispatch ctx.Backend.health)

let on_block ctx g = Backend.observe ~step ~deopt_resume ctx g

let stats_into (ctx : Backend.ctx) (s : Stats.t) =
  let static_traces = ref 0 in
  let static_blocks = ref 0 in
  Trace_cache.iter_all ctx.Backend.cache (fun tr ->
      if tr.Trace.completed > 0 then begin
        incr static_traces;
        static_blocks := !static_blocks + Trace.n_blocks tr
      end);
  let deopts, deopt_residue_blocks, osr_promotions, osr_entries =
    match ctx.Backend.osr with
    | Some osr ->
        ( Osr.deopts osr,
          Osr.residue_blocks osr,
          Osr.promotions osr,
          Osr.entries osr )
    | None -> (0, 0, 0, 0)
  in
  {
    s with
    Stats.trace_dispatches = ctx.Backend.trace_dispatches;
    deopts;
    deopt_residue_blocks;
    osr_promotions;
    osr_entries;
    traces_entered = ctx.Backend.traces_entered;
    traces_completed = ctx.Backend.traces_completed;
    completed_blocks = ctx.Backend.completed_blocks;
    partial_blocks = ctx.Backend.partial_blocks;
    completed_instrs = ctx.Backend.completed_instrs;
    partial_instrs = ctx.Backend.partial_instrs;
    traces_constructed = ctx.Backend.traces_constructed;
    traces_replaced = Trace_cache.n_replaced ctx.Backend.cache;
    traces_live = Trace_cache.n_live ctx.Backend.cache;
    static_traces = !static_traces;
    static_blocks = !static_blocks;
    chained_entries = ctx.Backend.chained_entries;
    guards_checked = ctx.Backend.guards_checked;
    guards_elided = ctx.Backend.guards_elided;
    guards_pruned = ctx.Backend.guards_pruned;
  }
