(** Deterministic, seedable fault injection for the self-healing engine.

    A fault {e schedule} is parsed from a small DSL (see {!create}):

    {v kind@prob    fire with probability prob at every dispatch
kind!tick    fire once, at the first dispatch >= tick
budget=K     cap the total number of injected faults v}

    separated by commas and/or whitespace, e.g.
    ["corrupt-trace@0.003,fail-install!500,budget=32"].

    Each fault kind (the FT0xx catalogue, {!catalogue}) targets a
    structure one of the TL2xx invariant checks guards, so every injected
    corruption is detectable by the existing linter — the injector
    measures the {e detection and recovery} machinery, never silently
    breaks the VM.  All randomness comes from a seeded xorshift64 PRNG:
    a schedule is a pure function of (spec, seed, dispatch stream), so
    chaos runs replay bit-identically. *)

type kind =
  | Corrupt_trace
      (** FT001: negate one block gid of an installed trace (TL210) *)
  | Corrupt_instrs
      (** FT002: skew one per-block instruction count (TL211) *)
  | Zero_counter  (** FT003: zero one BCG edge weight (TL204) *)
  | Saturate_counter
      (** FT004: push one edge weight past saturation (TL204) *)
  | Drop_best
      (** FT005: clear a node's cached most-likely successor (TL205) *)
  | Fail_install  (** FT006: fail the next trace installation *)
  | Alloc_pressure  (** FT007: evict half of the live trace cache *)

val kind_name : kind -> string
(** The DSL name: ["corrupt-trace"], ["zero-counter"], … *)

val code : kind -> string
(** The stable catalogue code: ["FT001"] … ["FT007"]. *)

val kind_of_name : string -> kind option

val catalogue : (string * string) list
(** Code/description pairs: FT001–FT007 (injectable faults, each naming
    the TL2xx check that detects it) plus FT901/FT902, the chaos gate's
    own verdict codes. *)

type t

val create : seed:int -> string -> t
(** Parse a schedule and seed its PRNG ([seed 0] is remapped to a fixed
    non-zero constant — xorshift has no zero state).  An empty spec
    yields an inactive injector.
    @raise Invalid_argument on a malformed spec. *)

val is_active : t -> bool
(** [true] while the schedule has arms and budget remaining. *)

val budget_left : t -> int

val injected : t -> int
(** Faults injected so far. *)

val tick :
  t ->
  now:int ->
  bcg:Bcg.t ->
  cache:Trace_cache.t ->
  active:Trace.t option ->
  (string * string) list
(** Evaluate every arm of the schedule at dispatch [now], applying the
    faults that fire; returns a [(code, detail)] pair per fault actually
    injected.  [active] pins the currently dispatching trace — it is
    never picked as a corruption victim.  An arm whose fault finds no
    eligible victim (empty cache, no BCG edges) fires without effect and
    does not consume budget. *)
