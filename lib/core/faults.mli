(** Deterministic, seedable fault injection for the self-healing engine.

    A fault {e schedule} is parsed from a small DSL (see {!create}):

    {v kind@prob    fire with probability prob at every dispatch
kind!tick    fire once, at the first dispatch >= tick
budget=K     cap the total number of injected faults v}

    separated by commas and/or whitespace, e.g.
    ["corrupt-trace@0.003,fail-install!500,budget=32"].

    Each fault kind (the FT0xx catalogue, {!catalogue}) targets a
    structure one of the TL2xx invariant checks guards, so every injected
    corruption is detectable by the existing linter — the injector
    measures the {e detection and recovery} machinery, never silently
    breaks the VM.  All randomness comes from a seeded xorshift64 PRNG:
    a schedule is a pure function of (spec, seed, dispatch stream), so
    chaos runs replay bit-identically. *)

type kind =
  | Corrupt_trace
      (** FT001: negate one block gid of an installed trace (TL210) *)
  | Corrupt_instrs
      (** FT002: skew one per-block instruction count (TL211) *)
  | Zero_counter  (** FT003: zero one BCG edge weight (TL204) *)
  | Saturate_counter
      (** FT004: push one edge weight past saturation (TL204) *)
  | Drop_best
      (** FT005: clear a node's cached most-likely successor (TL205) *)
  | Fail_install  (** FT006: fail the next trace installation *)
  | Alloc_pressure  (** FT007: evict half of the live trace cache *)
  | Guard_flip
      (** FT008: force a guard failure at a chosen position of the next
          followed trace, exercising the side-exit / OSR deoptimization
          path.  Transparent by construction: tracing is an overlay, so
          a flipped guard must never change VM results. *)

val kind_name : kind -> string
(** The DSL name: ["corrupt-trace"], ["zero-counter"], … *)

val code : kind -> string
(** The stable catalogue code: ["FT001"] … ["FT008"]. *)

val kind_of_name : string -> kind option
(** Accepts both hyphenated and underscored spellings ([guard-flip] and
    [guard_flip]). *)

val catalogue : (string * string) list
(** Code/description pairs: FT001–FT008 (injectable faults, each naming
    the TL2xx check that detects it) plus FT901/FT902, the chaos gate's
    own verdict codes. *)

type t

val create : seed:int -> string -> t
(** Parse a schedule and seed its PRNG ([seed 0] is remapped to a fixed
    non-zero constant — xorshift has no zero state).  An empty spec
    yields an inactive injector.
    @raise Invalid_argument on a malformed spec. *)

val is_active : t -> bool
(** [true] while the schedule has arms and budget remaining. *)

val budget_left : t -> int

val injected : t -> int
(** Faults injected so far. *)

val tick :
  t ->
  now:int ->
  bcg:Bcg.t ->
  cache:Trace_cache.t ->
  active:Trace.t option ->
  (string * string) list
(** Evaluate every arm of the schedule at dispatch [now], applying the
    faults that fire; returns a [(code, detail)] pair per fault actually
    injected.  [active] pins the currently dispatching trace — it is
    never picked as a corruption victim.  An arm whose fault finds no
    eligible victim (empty cache, no BCG edges) fires without effect and
    does not consume budget.

    A [Guard_flip] arm does not corrupt anything at tick time: it {e
    arms} a pending flip, consumed later by the dispatch loop's guard
    comparison ({!flip_now}) inside the next followed trace. *)

(** {2 FT008 guard flips}

    [tick] runs in the dispatch prologue — outside any trace — so a
    guard flip cannot fire there.  Instead it is armed as a pending
    position and consumed by the trace-following loop. *)

val arm_flip : t -> pos:int -> unit
(** Directly arm a guard flip at trace position [pos >= 1] (tests and
    the deopt-at-every-position sweep use this; chaos schedules arm via
    the DSL).  The position is clamped to the followed trace's length at
    consumption time.
    @raise Invalid_argument if [pos < 1]. *)

val flip_armed : t -> bool
(** Whether a flip is armed and not yet consumed. *)

val flip_now : t -> pos:int -> n_blocks:int -> bool
(** Called by the dispatch loop at guard position [pos] of a followed
    trace of [n_blocks] blocks: [true] exactly once, when the armed
    (clamped) position is reached — the caller must then treat the guard
    as failed.  [false] when nothing is armed. *)
