module Layout = Cfg.Layout

(* A trace: a sequence of basic blocks expected to execute to completion
   (paper §3.7).  Entry is keyed by the *transition* (first, blocks.(0)):
   the trace is dispatched when blocks.(0) is reached with [first] as the
   previously executed block — "a sequence which enters N_X0X1".  The
   expected completion probability is the product of the branch
   correlations along the trace, computed at construction time.

   A loop body trace naturally chains to itself: its last block is the
   loop's back-edge source, which is exactly the context of its own entry
   transition. *)

type t = {
  id : int;
  first : Layout.gid; (* entry context block X0 *)
  blocks : Layout.gid array; (* X1 .. Xk: the blocks executed from the trace *)
  prob : float; (* expected completion probability at construction *)
  instr_len : int array; (* static instruction count per block *)
  total_instrs : int;
  mutable entered : int;
  mutable completed : int;
  mutable partial_exits : int;
  mutable partial_instrs : int; (* instructions executed on early exits *)
  mutable owner : int;
      (* id of the session whose profiler built this trace; 0 for a
         single-engine run.  Stamped by the cache at installation and
         kept by the first builder on a hash-cons reuse, so the cache can
         count cross-session reuse. *)
  mutable pruned : bool array;
      (* guard-implication pruning verdicts: pruned.(i) means the guard
         at position i is implied by the entry facts and the guards
         before it, so its check can be elided.  [||] = no pruning.
         Derived state: recomputable from the body by Trace_prover, not
         persisted in snapshots — restored traces start unpruned. *)
  mutable validated : bool;
      (* whether the debug_checks sweep has already run translation
         validation on this trace; derived state, not persisted *)
  mutable promoted : bool;
      (* built by OSR mid-loop promotion rather than the greedy cutter:
         the completion probability is the product of possibly immature
         correlations and may sit below the cutter's threshold (TL201 is
         relaxed accordingly).  Not persisted directly: a sub-threshold
         probability identifies a promoted trace on restore, because the
         cutter never commits one. *)
  mutable lowered : Microir.body option;
      (* the compiled tier: the trace's blocks lowered to register
         micro-IR (see Microir), present only while the trace holds a
         compiled-tier slot.  Derived state, never persisted — a
         restored cache re-lowers whatever the tier cost model picks,
         exactly like pruned/validated re-derive. *)
}

let make ~id ~(layout : Layout.t) ~first ~blocks ~prob =
  if Array.length blocks = 0 then invalid_arg "Trace.make: empty trace";
  let instr_len = Array.map (fun g -> Layout.block_len layout g) blocks in
  {
    id;
    first;
    blocks;
    prob;
    instr_len;
    total_instrs = Array.fold_left ( + ) 0 instr_len;
    entered = 0;
    completed = 0;
    partial_exits = 0;
    partial_instrs = 0;
    owner = 0;
    pruned = [||];
    validated = false;
    promoted = false;
    lowered = None;
  }

let n_blocks t = Array.length t.blocks

let entry_key t = (t.first, t.blocks.(0))

let last_block t = t.blocks.(Array.length t.blocks - 1)

(* Two traces are the same cache entry iff context and block sequence are
   identical. *)
let same_sequence a b = a.first = b.first && a.blocks = b.blocks

let completion_rate t =
  if t.entered = 0 then 0.0
  else float_of_int t.completed /. float_of_int t.entered

let describe layout t =
  Printf.sprintf "T%d [%s | %s] p=%.3f entered=%d completed=%d" t.id
    (Layout.describe layout t.first)
    (String.concat " -> "
       (Array.to_list (Array.map (Layout.describe layout) t.blocks)))
    t.prob t.entered t.completed

let pp ppf t =
  Format.fprintf ppf "T%d ctx=%d blocks=[%s] p=%.3f" t.id t.first
    (String.concat ";"
       (Array.to_list (Array.map string_of_int t.blocks)))
    t.prob
