(** BCG-profiled block dispatch ([Health.Profiling_only], and full
    tracing with [Config.build_traces] off — the paper's Table VI
    configuration): every block feeds the profiler, the trace cache is
    never consulted.  See {!Backend.S}. *)

include Backend.S
