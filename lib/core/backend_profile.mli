(** BCG-profiled block dispatch ([Health.Profiling_only], and full
    tracing with [Config.build_traces] off — the paper's Table VI
    configuration): every block feeds the profiler, the trace cache is
    never consulted.  See {!Backend.S}. *)

include Backend.S

val hot_loop : Backend.ctx -> Cfg.Layout.gid -> promote:bool -> int option
(** Feed one outside-trace dispatch of [g] to OSR hot-loop detection
    ({!Osr.observe_header}); [None] when OSR is off.  Shared with
    [Backend_trace], which passes [promote = true] and acts on the
    returned hotness. *)
