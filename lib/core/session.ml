module Layout = Cfg.Layout
module Interp = Vm.Interp

(* Multi-workload sessions.

   A session runs several programs "concurrently" by round-robin
   stepping: each member advances a fixed batch of basic blocks, then
   the next member runs, until every program has finished.  Each member
   owns a full engine (its own BCG profiler, health ladder, metrics
   registry) but members executing the same layout SHARE one trace
   cache, so a hot trace reconstructed by one member is entered by the
   others without being rebuilt — cross-session reuse, counted by the
   cache (Trace_cache.n_cross_installs / n_cross_entries).

   Before each batch the member announces itself to its cache
   (Trace_cache.set_session), so traces are stamped with their builder
   and reuse across members is attributed correctly.

   Tracing stays a pure overlay: every member's VM result is
   bit-identical to a solo run of the same program. *)

type member = {
  id : int; (* session id, >= 1; stamps traces this member builds *)
  name : string;
  engine : Engine.t;
  handle : Interp.handle;
  mutable wall : float; (* stepping time accumulated so far *)
  mutable finished : Interp.result option;
}

type t = {
  batch : int;
  mutable rev_members : member list;
  mutable next_id : int;
}

let create ?(batch = 1024) () =
  if batch < 1 then invalid_arg "Session.create: batch < 1";
  { batch; rev_members = []; next_id = 1 }

let batch t = t.batch

let members t = List.rev t.rev_members

(* The distinct caches in use, in member order. *)
let caches t =
  List.fold_left
    (fun acc m ->
      let c = Engine.cache m.engine in
      if List.exists (fun c' -> c' == c) acc then acc else c :: acc)
    []
    (members t)
  |> List.rev

let add ?name ?config ?events ?max_instructions t (layout : Layout.t) =
  let id = t.next_id in
  t.next_id <- id + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "s%d" id
  in
  (* share the trace cache of the first member already running this
     layout; its creator's config governs capacity and healing *)
  let cache =
    List.find_map
      (fun m ->
        if Engine.layout m.engine == layout then Some (Engine.cache m.engine)
        else None)
      (members t)
  in
  let engine = Engine.create ?config ?events ?cache layout in
  let handle =
    Interp.start ?max_instructions layout ~on_block:(fun g ->
        Engine.on_block engine g)
  in
  (* OSR deopt checks materialize state through the member's own handle *)
  Engine.attach engine handle;
  let m = { id; name; engine; handle; wall = 0.0; finished = None } in
  t.rev_members <- m :: t.rev_members;
  m

let member_id m = m.id

let member_name m = m.name

let engine m = m.engine

let finished m = m.finished <> None

let vm_result m =
  match m.finished with
  | Some r -> r
  | None -> invalid_arg "Session.vm_result: member still running"

let stats m =
  Engine.stats m.engine ~vm_result:(vm_result m) ~wall_seconds:m.wall

(* Advance one member by up to [batch] blocks, attributing the batch to
   it in its (possibly shared) cache. *)
let step_member t m =
  Trace_cache.set_session (Engine.cache m.engine) m.id;
  (* a member turn is a span on that member's own dispatch clock *)
  let turn_span =
    match Engine.spans m.engine with
    | Some s ->
        Some
          ( s,
            Spans.begin_span s ~kind:Spans.Member_turn ~label:m.name
              ~now:(Engine.total_dispatches m.engine) )
    | None -> None
  in
  let t0 = Unix.gettimeofday () in
  ignore (Interp.step_blocks m.handle t.batch);
  m.wall <- m.wall +. (Unix.gettimeofday () -. t0);
  (match turn_span with
  | Some (s, id) ->
      Spans.end_span s id ~now:(Engine.total_dispatches m.engine)
  | None -> ());
  if not (Interp.running m.handle) then
    m.finished <- Some (Interp.result_of m.handle)

let run t =
  let progressed = ref true in
  while !progressed do
    progressed := false;
    List.iter
      (fun m ->
        if m.finished = None then begin
          step_member t m;
          if m.finished = None then progressed := true
        end)
      (members t)
  done

(* Session-level cross-reuse totals, summed over the distinct caches. *)
let cross_installs t =
  List.fold_left (fun n c -> n + Trace_cache.n_cross_installs c) 0 (caches t)

let cross_entries t =
  List.fold_left (fun n c -> n + Trace_cache.n_cross_entries c) 0 (caches t)
