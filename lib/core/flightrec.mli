(** Flight recorder: an always-on bounded ring buffer ("black box") of
    the most recent events, span closures and metric deltas.  Recording
    is O(1) per entry with retention bounded by the ring capacity; on a
    trigger condition the harness-installed [on_dump] hook serializes
    the surviving window into a postmortem artifact. *)

type entry =
  | Event of { seq : int; time : int; payload : Events.payload }
      (** A delivered engine event, as tapped off the event stream. *)
  | Span_closed of {
      seq : int;
      time : int;
      id : int;
      parent : int;
      kind : string;
      label : string;
      start_time : int;
    }  (** A span that just closed ([time] is its end time). *)
  | Metric_delta of {
      seq : int;
      time : int;
      name : string;
      delta : int;
      total : int;
    }
      (** A metric that moved between two consecutive snapshots. *)

(** Why a dump fired.  [Manual] is a forced dump (CLI / tests). *)
type dump_reason =
  | Invariant
  | Divergence
  | Snapshot_rejected
  | Degraded
  | Manual

val reason_to_string : dump_reason -> string
(** Stable wire tag for the reason, used in postmortem headers. *)

val reason_of_string : string -> dump_reason option

type t

val create : capacity:int -> t
(** Ring of [capacity] slots (clamped to at least 2). *)

val capacity : t -> int

val recorded : t -> int
(** Total entries ever recorded (>= capacity means the ring wrapped). *)

val dropped : t -> int
(** Entries pushed out of the ring by wrap-around. *)

val dumps : t -> int
(** Number of times a dump trigger fired. *)

val set_on_dump : t -> (dump_reason -> unit) -> unit
(** Install the dump hook.  The recorder itself performs no I/O. *)

val record_event : t -> Events.event -> unit
(** Record a tapped event.  The already-allocated event is stored by
    pointer, so this path — by far the hottest — allocates nothing. *)

val record_span_closed :
  t ->
  time:int ->
  id:int ->
  parent:int ->
  kind:string ->
  label:string ->
  start_time:int ->
  unit

val record_metric_delta :
  t -> time:int -> name:string -> delta:int -> total:int -> unit

val seq_of : entry -> int
val time_of : entry -> int

val to_list : t -> entry list
(** The surviving window, oldest first. *)

val trigger : t -> dump_reason -> unit
(** Fire the dump hook (and count the dump even when no hook is set). *)
