(** A registry of named counters and gauges with periodic snapshotting.

    The registry is the numeric half of the observability layer (the
    {!Events} stream is the other): components register either {e owned
    counters} (a mutable cell bumped on the hot path) or {e polled
    gauges} (a closure evaluated only when a snapshot is taken — the
    engine exposes its dispatch accounting this way, at zero hot-path
    cost).

    Snapshotting is driven by {!tick}, which the engine calls once per
    dispatch: every [period] ticks the registry evaluates every metric
    and appends a {!snapshot} to the series.  With [period = 0]
    (the default) a tick is one integer increment and one compare —
    the disabled path stays effectively free. *)

type t

type counter
(** An owned mutable cell, resolved once at registration. *)

type snapshot = {
  at : int;  (** the tick count (dispatch index) the snapshot was taken at *)
  values : (string * int) array;
      (** every registered metric, in registration order *)
}

val create : ?period:int -> unit -> t
(** [period] ticks between snapshots; [0] (default) disables periodic
    snapshotting.  @raise Invalid_argument on a negative period. *)

val period : t -> int

val set_period : t -> int -> unit
(** Also restarts the countdown to the next snapshot. *)

val counter : t -> string -> counter
(** Find or register the named counter.
    @raise Invalid_argument if the name is registered as a gauge. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val counter_name : counter -> string

val gauge : t -> string -> (unit -> int) -> unit
(** Register a polled gauge; the closure runs only at snapshot time.
    @raise Invalid_argument if the name is already registered. *)

val read : t -> string -> int option
(** Current value of any registered metric (polls gauges). *)

val names : t -> string list
(** Registered metric names, in registration order. *)

val tick : t -> unit
(** Advance the dispatch clock; takes a snapshot when the period
    elapses. *)

val ticks : t -> int

val force_snapshot : t -> snapshot
(** Snapshot now, off the periodic schedule; appended to the series and
    reported to the {!on_snapshot} callback like a periodic one. *)

val snapshots : t -> snapshot list
(** The snapshot series so far, in chronological order. *)

val on_snapshot : t -> (snapshot -> unit) -> unit
(** Called at every snapshot (periodic or forced), after it is appended
    to the series.  Callbacks run in registration order. *)
