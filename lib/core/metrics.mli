(** A registry of named counters, gauges and histograms with periodic
    snapshotting.

    The registry is the numeric half of the observability layer (the
    {!Events} stream is the other): components register either {e owned
    counters} (a mutable cell bumped on the hot path), {e polled gauges}
    (a closure evaluated only when a snapshot is taken — the engine
    exposes its dispatch accounting this way, at zero hot-path cost), or
    {e histograms} (fixed power-of-two buckets; recording is O(1) and
    allocation-free, so distributions such as executed-trace length can
    be captured from the dispatch path).

    Snapshotting is driven by {!tick}, which the engine calls once per
    dispatch: every [period] ticks the registry evaluates every metric
    and appends a {!snapshot} to the series.  With [period = 0]
    (the default) a tick is one integer increment and one compare —
    the disabled path stays effectively free. *)

type t

type counter
(** An owned mutable cell, resolved once at registration. *)

type histogram
(** Fixed-bucket distribution of non-negative integer observations.
    Bucket 0 counts observations [<= 0]; bucket [i] counts
    [[2^(i-1), 2^i - 1]]; the last bucket is unbounded above
    (overflow).  Negative observations are clamped to [0]. *)

type snapshot = {
  at : int;  (** the tick count (dispatch index) the snapshot was taken at *)
  values : (string * int) array;
      (** every registered metric, in registration order.  A histogram
          contributes six fields: [name.count], [name.sum], [name.p50],
          [name.p90], [name.p99] and [name.max]. *)
}

val create : ?period:int -> unit -> t
(** [period] ticks between snapshots; [0] (default) disables periodic
    snapshotting.  @raise Invalid_argument on a negative period. *)

val period : t -> int

val set_period : t -> int -> unit
(** Change the snapshot period and restart the countdown.  If ticks had
    already accumulated toward the next snapshot, one snapshot is taken
    at the change point first — a mid-run period change never drops the
    observations straddling the boundary. *)

val counter : t -> string -> counter
(** Find or register the named counter.
    @raise Invalid_argument if the name is registered as something
    else. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val counter_name : counter -> string

val gauge : t -> string -> (unit -> int) -> unit
(** Register a polled gauge; the closure runs only at snapshot time.
    @raise Invalid_argument if the name is already registered. *)

val histogram : t -> ?buckets:int -> string -> histogram
(** Find or register the named histogram with [buckets] power-of-two
    buckets (default 16; the first find-or-register fixes the count).
    @raise Invalid_argument if the name is registered as something else,
    or if [buckets] is outside [[2, 62]]. *)

val record : histogram -> int -> unit
(** O(1): one bit-length loop and one array bump.  Negative values are
    clamped to [0]. *)

val hist_name : histogram -> string

val hist_count : histogram -> int
(** Number of observations recorded. *)

val hist_sum : histogram -> int

val hist_mean : histogram -> float
(** [0.0] when empty. *)

val hist_min : histogram -> int
(** Smallest observation ([0] when empty). *)

val hist_max : histogram -> int
(** Largest observation ([0] when empty). *)

val percentile : histogram -> float -> int
(** [percentile h p] for [p] in [[0, 100]]: an upper bound on the value
    at rank [ceil(p/100 * count)], reported as the containing bucket's
    upper edge clamped to the observed [min]/[max] (so [p <= 0] is the
    minimum, [p >= 100] the maximum, and a single-valued histogram
    answers exactly).  [0] when empty. *)

val n_buckets : histogram -> int

val bucket_count : histogram -> int -> int
(** Observations in bucket [i]. *)

val bucket_bounds : histogram -> int -> int * int
(** Inclusive [(lo, hi)] range of bucket [i]; the overflow bucket's
    upper bound is [max_int].  @raise Invalid_argument out of range. *)

val read : t -> string -> int option
(** Current value of any registered metric (polls gauges; a histogram
    reads as its observation count). *)

val names : t -> string list
(** Registered metric names, in registration order. *)

val tick : t -> unit
(** Advance the dispatch clock; takes a snapshot when the period
    elapses. *)

val ticks : t -> int

val force_snapshot : t -> snapshot
(** Snapshot now, off the periodic schedule; appended to the series and
    reported to the {!on_snapshot} callback like a periodic one. *)

val snapshots : t -> snapshot list
(** The snapshot series so far, in chronological order. *)

val on_snapshot : t -> (snapshot -> unit) -> unit
(** Called at every snapshot (periodic or forced), after it is appended
    to the series.  Callbacks run in registration order. *)
