(** The dispatch-strategy seam.

    A {e backend} is one way of processing the VM's block-dispatch
    stream — the paper's ladder of execution modes made explicit:

    - [Backend_interp] — pure interpretation, not even the profiler hook;
    - [Backend_profile] — block dispatch with BCG profiling;
    - [Backend_trace] — trace-cache dispatch over the profiled stream.

    The engine owns one {!ctx} (the state every strategy shares) and
    selects a backend per dispatch from the {!Health} ladder, so
    degradation is a backend {e switch} rather than mode flags threaded
    through one loop.  All three strategies observe the same stream and
    keep the VM's results bit-identical — a backend only changes what
    bookkeeping rides along.

    This module holds the shared context and the helpers strategies
    compose ({!prologue}, {!follow}, {!observe}, the trace
    completion/side-exit bookkeeping, the health-ladder walk and the
    invariant sweep); the strategy implementations live in their own
    modules. *)

type ctx = {
  config : Config.t;
  layout : Cfg.Layout.t;
  profiler : Profiler.t;
  cache : Trace_cache.t;
  events : Events.t;
  metrics : Metrics.t;
  health : Health.t;
  faults : Faults.t;
  osr : Osr.t option;
      (** on-stack replacement state; [None] when [Config.Osr] is off *)
  spans : Spans.t option;
      (** causal span recorder; [None] when [Config.Obs.spans] is off *)
  flightrec : Flightrec.t option;
      (** the always-on black box; [None] only when
          [Config.Obs.flightrec_capacity = 0].  Dump triggers fire from
          the invariant sweep, the ladder bottom and snapshot
          rejection; the intake rides the event tap and the span
          close hook. *)
  ledger : Ledger.t option;
      (** decision-attribution ledger; [None] when [Config.Obs.ledger]
          is off *)
  attr_self : int array;
      (** per-gid dispatches outside any trace; [[||]] when
          [Config.Obs.attribution] is off *)
  attr_inlined : int array;
      (** per-gid block executions inlined inside traces *)
  h_trace_len : Metrics.histogram;
      (** blocks per executed (completed) trace *)
  h_exit_distance : Metrics.histogram;
      (** blocks matched before a side exit *)
  h_build_len : Metrics.histogram;  (** blocks per installed builder path *)
  h_backoff : Metrics.histogram;
      (** finite quarantine backoff durations *)
  h_deopt_residue : Metrics.histogram;
      (** trace positions abandoned past each OSR deopt point *)
  mutable active : Trace.t option;
      (** the trace currently being followed *)
  mutable active_lowered : Microir.body option;
      (** the active trace's compiled body when it was entered on the
          compiled tier ({!Config.Tier}); positions followed while this
          is set are accounted as micro-op dispatches.  Cleared with
          [active]. *)
  mutable active_pos : int;  (** index of the next expected block *)
  mutable matched_blocks : int;
  mutable matched_instrs : int;
  mutable prev : Cfg.Layout.gid;
      (** last block actually executed, traces included *)
  mutable prev2 : Cfg.Layout.gid;
  mutable block_dispatches : int;
  mutable trace_dispatches : int;
  mutable traces_entered : int;
  mutable traces_completed : int;
  mutable completed_blocks : int;
  mutable partial_blocks : int;
  mutable completed_instrs : int;
  mutable partial_instrs : int;
  mutable traces_constructed : int;
  mutable builder_reuses : int;
  mutable chained_entries : int;
  mutable guards_checked : int;
      (** in-trace guard positions compared against the executed block *)
  mutable guards_elided : int;
      (** in-trace guard positions skipped on a [Trace_prover] proof
          ([Trace.pruned]); the comparison still runs — traces are a
          pure observational overlay — but is accounted as elided *)
  mutable guards_pruned : int;
      (** static pruning verdicts derived at install time *)
  mutable traces_compiled : int;
      (** promotions to the compiled micro-IR tier *)
  mutable tier_demotions : int;
      (** compiled slots lost under [compile_budget] *)
  mutable compiled_entries : int;
      (** trace entries that ran on the compiled tier *)
  mutable mi_positions : int;
      (** trace positions followed on the compiled tier *)
  mutable mi_ops : int;  (** micro-ops those positions dispatched *)
  mutable mi_fused : int;  (** superinstructions among them *)
  mutable mi_src_instrs : int;
      (** source instructions the same positions dispatch under
          [Backend_trace] — the baseline of the reduction *)
  mutable just_completed : bool;
  mutable invariant_violations : int;
  mutable seen_decays : int;
  mutable healed_nodes : int;
  mutable in_debug_sweep : bool;
}
(** The engine's dispatch state, shared by every strategy.  The record
    is concrete so strategies (including out-of-tree ones) can be
    written against it; everyone else should treat it as owned by the
    engine and read it through [Engine]'s accessors. *)

(** One dispatch strategy. *)
module type S = sig
  val name : string
  (** Stable one-word identifier: ["interp"] / ["profile"] /
      ["trace"]. *)

  val describe : string
  (** One-line human-readable description of the strategy. *)

  val step : ctx -> Cfg.Layout.gid -> unit
  (** Process one block dispatched {e outside} any trace: the dispatch
      decision that distinguishes the strategies. *)

  val on_block : ctx -> Cfg.Layout.gid -> unit
  (** The full VM observer: follow the active trace if any, else
      {!step}; built from {!observe}. *)

  val poll_osr : ctx -> Cfg.Layout.gid -> unit
  (** OSR {e entry} point: feed one outside-trace dispatch to hot-loop
      detection ({!Osr.observe_header}).  The interp strategy ignores
      it, the profile strategy counts header heat without acting, and
      the trace strategy promotes the loop mid-iteration on a threshold
      crossing.  No-op when OSR is off. *)

  val deopt_resume : ctx -> Cfg.Layout.gid -> unit
  (** OSR {e exit} point: process the block dispatch execution resumes
      at after a deoptimization.  A plain dispatch that never consults
      the trace cache — the engine just abandoned a trace, and
      re-entering one at the deopt transition would defeat the
      resume. *)

  val stats_into : ctx -> Stats.t -> Stats.t
  (** Overlay the counters this strategy maintains onto a Stats record.
      The engine composes the end-of-run statistics by piping a base
      record through every strategy's [stats_into] — counters are
      cumulative over the whole run, whichever backend was active when
      they advanced. *)
end

(** {2 Shared helpers for strategy implementations} *)

val prologue : ctx -> unit
(** The dispatch prologue every [step] runs first: advance the metrics
    clock and, when self-healing or fault injection is armed, the cache
    clock and the fault injector. *)

val note_executed : ctx -> Cfg.Layout.gid -> unit
(** Record [g] as the most recently executed block (shifting the
    two-block window the profiler resynchronizes from). *)

val clock : ctx -> int
(** The engine's dispatch clock ([block_dispatches +
    trace_dispatches]) — the timestamp base of spans, the cache clock
    and the event stream alike. *)

val fr_trigger : ctx -> Flightrec.dump_reason -> unit
(** Fire a flight-recorder dump trigger; no-op when the recorder is
    disarmed. *)

val ledger_record :
  ctx ->
  ?trace_id:int ->
  ?first:int ->
  ?head:int ->
  Ledger.action ->
  unit
(** Append a decision record; no-op when the ledger is off. *)

val attr_step : ctx -> Cfg.Layout.gid -> unit
(** Attribute one outside-trace dispatch of [g]; no-op when attribution
    is off. *)

val attr_inline : ctx -> Cfg.Layout.gid -> unit
(** Attribute one execution of [g] inlined inside a trace; no-op when
    attribution is off. *)

val account_lowered : ctx -> int -> unit
(** Compiled-tier accounting for one followed trace position ([pos]):
    micro-ops, fused ops and baseline source instructions from the
    active lowered body.  No-op when the active trace is on the
    interpreted tier ([active_lowered = None]). *)

val condemn :
  ctx ->
  first:Cfg.Layout.gid ->
  head:Cfg.Layout.gid ->
  code:string ->
  Trace.t option
(** [Trace_cache.quarantine] plus the observability side of the episode:
    records the finite backoff duration in [h_backoff] and emits a
    closed quarantine span stretching to the backoff expiry. *)

val apply_health : ctx -> Health.transition -> unit
(** Publish a ladder transition ([Mode_degraded] / [Mode_recovered])
    and reset the profiler when climbing out of interp-only. *)

val run_debug_checks : ctx -> unit
(** The invariant sweep ({!Config.t.debug_checks}): count and publish
    every finding; also translation-validates traces the sweep has not
    seen yet ([Trace_prover.validate_new] — TL212–TL218).  Under
    self-healing the sweep heals flagged BCG nodes, quarantines flagged
    traces and strikes the ladder.  Re-entrancy guarded. *)

val finish_completed : ctx -> Trace.t -> unit
(** End the active trace after a completion and resync the profiler. *)

val finish_partial : ctx -> Trace.t -> unit
(** End the active trace after a side exit (the mismatching block has
    not been processed yet) and resync the profiler. *)

val deopt : ctx -> Osr.t -> Trace.t -> resume:Cfg.Layout.gid -> reason:Osr.reason -> unit
(** OSR deoptimization: abandon the active trace at the current position
    and resume block dispatch at [resume].  Performs the side-exit
    bookkeeping ({!finish_partial}: event, profiler resync, unpin),
    records the abandoned residue, checks the materialized interpreter
    continuation against [resume] (TL219 on mismatch) and emits
    [Deopt_entered]. *)

val deopt_active : ctx -> reason:Osr.reason -> unit
(** Mid-flight cut-over: deoptimize the currently executing trace (a
    sweep is condemning it) at whatever block the interpreter
    materializes.  No-op when no trace is active or OSR is off. *)

val validate_dispatch :
  ctx -> Trace.t -> prev:Cfg.Layout.gid -> cur:Cfg.Layout.gid -> string option
(** Validate a trace produced by the dispatch lookup before entering
    it; [Some code] names the first violated invariant. *)

val follow :
  step:(ctx -> Cfg.Layout.gid -> unit) ->
  deopt_resume:(ctx -> Cfg.Layout.gid -> unit) ->
  ctx ->
  Cfg.Layout.gid ->
  unit
(** Follow the active trace, if any; a block outside every trace goes
    to [step].  An active trace is followed to its end regardless of
    health-level changes mid-trace.  Each followed position counts as
    one guard — [guards_elided] when [Trace.pruned] covers it,
    [guards_checked] otherwise — and an organic mismatch on a pruned
    position is reported as a TL217 disproof under [debug_checks].

    A guard fails organically (mismatching block) or by an armed FT008
    flip ({!Faults.flip_now}).  Without OSR both take the classic side
    exit and reprocess the block through the full dispatch path; with
    OSR both {!deopt} and resume through [deopt_resume]. *)

val observe :
  step:(ctx -> Cfg.Layout.gid -> unit) ->
  deopt_resume:(ctx -> Cfg.Layout.gid -> unit) ->
  ctx ->
  Cfg.Layout.gid ->
  unit
(** The full VM observer a backend's [on_block] is built from: stamp
    the event clock, {!follow}, then run the decay-boundary invariant
    sweep when armed. *)
