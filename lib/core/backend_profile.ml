(* BCG-profiled block dispatch (Health.Profiling_only, and full tracing
   when Config.build_traces is off — the paper's Table VI overhead
   configuration).

   Every block is an ordinary block dispatch feeding the profiler; the
   trace cache is never consulted, so no trace is ever entered.  The
   profiler's signals still fire — trace construction is the signal
   subscriber's business (the engine gates it on Config.build_traces),
   not this strategy's. *)

let name = "profile"

let describe = "block dispatch with BCG profiling; traces never entered"

(* Hot-loop detection lives with the profiling strategy: one
   outside-trace dispatch of [g] feeds the OSR header counters.  With
   [promote = false] the heat saturates at the threshold instead of
   firing, so it survives until a trace-building backend can act on the
   crossing ([Backend_trace] calls this with [promote = true]). *)
let hot_loop (ctx : Backend.ctx) g ~promote =
  match ctx.Backend.osr with
  | Some osr -> Osr.observe_header osr g ~promote
  | None -> None

let poll_osr (ctx : Backend.ctx) g = ignore (hot_loop ctx g ~promote:false)

let step (ctx : Backend.ctx) g =
  Backend.prologue ctx;
  ctx.Backend.block_dispatches <- ctx.Backend.block_dispatches + 1;
  ctx.Backend.just_completed <- false;
  Backend.attr_step ctx g;
  Profiler.dispatch ctx.Backend.profiler g;
  Backend.note_executed ctx g;
  poll_osr ctx g;
  if Config.self_heal ctx.Backend.config then
    Backend.apply_health ctx (Health.clean_dispatch ctx.Backend.health)

(* A deopt resume is an ordinary profiled dispatch — [step] never
   consults the cache. *)
let deopt_resume = step

let on_block ctx g = Backend.observe ~step ~deopt_resume ctx g

let stats_into (ctx : Backend.ctx) (s : Stats.t) =
  let profiler = ctx.Backend.profiler in
  let bcg = Profiler.bcg profiler in
  {
    s with
    Stats.block_dispatches = ctx.Backend.block_dispatches;
    signals = Profiler.signals profiler;
    bcg_nodes = Bcg.n_nodes bcg;
    bcg_edges = Bcg.n_edges bcg;
    ic_predictions = Profiler.predictions profiler;
  }
