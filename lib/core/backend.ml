module Layout = Cfg.Layout

(* The dispatch-strategy seam.

   A backend is one way of processing the VM's block-dispatch stream:
   pure interpretation (Backend_interp), BCG-profiled block dispatch
   (Backend_profile), or trace-cache dispatch (Backend_trace).  The
   engine owns one [ctx] — the state every strategy shares — and selects
   a backend per dispatch from the health ladder, so degradation is a
   backend *switch* rather than mode flags inside one loop.

   This module holds the shared state record and the helpers every
   strategy composes: the dispatch prologue (metrics tick, fault
   injection), active-trace following, trace completion/side-exit
   bookkeeping, health-ladder transitions and the invariant sweep.  The
   strategies themselves live in backend_interp.ml / backend_profile.ml /
   backend_trace.ml. *)

type ctx = {
  config : Config.t;
  layout : Layout.t;
  profiler : Profiler.t;
  cache : Trace_cache.t;
  events : Events.t;
  metrics : Metrics.t;
  health : Health.t;
  faults : Faults.t;
  osr : Osr.t option; (* None = on-stack replacement off (Config.Osr) *)
  (* deep observability (Config.Obs + engine histograms) *)
  spans : Spans.t option; (* None = span recording off *)
  flightrec : Flightrec.t option;
    (* the always-on black box (None only when
       Config.Obs.flightrec_capacity = 0); dump triggers fire here and
       in the engine, the intake is wired through the event tap *)
  ledger : Ledger.t option; (* None = decision ledger off *)
  attr_self : int array;
    (* per-gid dispatches outside traces; [||] = attribution off *)
  attr_inlined : int array; (* per-gid executions inlined inside traces *)
  h_trace_len : Metrics.histogram; (* blocks per executed (completed) trace *)
  h_exit_distance : Metrics.histogram; (* blocks matched before a side exit *)
  h_build_len : Metrics.histogram; (* blocks per installed builder path *)
  h_backoff : Metrics.histogram; (* finite quarantine backoff durations *)
  h_deopt_residue : Metrics.histogram;
    (* trace positions abandoned past each deopt point (OSR) *)
  (* trace execution state *)
  mutable active : Trace.t option;
  mutable active_lowered : Microir.body option;
    (* the active trace's compiled body when it was entered on the
       compiled tier (Config.Tier); positions followed while this is set
       are accounted as micro-op dispatches instead of source
       instructions.  Cleared with [active]. *)
  mutable active_pos : int; (* index of the next expected block *)
  mutable matched_blocks : int;
  mutable matched_instrs : int;
  (* last two blocks actually executed, traces included *)
  mutable prev : Layout.gid;
  mutable prev2 : Layout.gid;
  (* accounting *)
  mutable block_dispatches : int;
  mutable trace_dispatches : int;
  mutable traces_entered : int;
  mutable traces_completed : int;
  mutable completed_blocks : int;
  mutable partial_blocks : int;
  mutable completed_instrs : int;
  mutable partial_instrs : int;
  mutable traces_constructed : int;
  mutable builder_reuses : int;
  mutable chained_entries : int;
    (* trace entries whose previous dispatch completed another trace:
       the dispatch-level view of Dynamo-style trace linking *)
  mutable guards_checked : int;
    (* in-trace guard positions compared against the executed block *)
  mutable guards_elided : int;
    (* in-trace guard positions skipped on a Trace_prover proof
       (Trace.pruned); the comparison still runs — traces are a pure
       observational overlay — but is accounted as elided *)
  mutable guards_pruned : int;
    (* static pruning verdicts derived at install time (builder-side) *)
  (* compiled-tier accounting (Config.Tier; all zero with the tier off).
     The tier is a pure overlay like everything else: the VM executes
     the same bytecode either way, and these counters price what a
     micro-IR dispatch loop would have done instead. *)
  mutable traces_compiled : int;
  mutable tier_demotions : int;
  mutable compiled_entries : int; (* trace entries on the compiled tier *)
  mutable mi_positions : int; (* positions followed on the compiled tier *)
  mutable mi_ops : int; (* micro-ops those positions dispatched *)
  mutable mi_fused : int; (* superinstructions among them *)
  mutable mi_src_instrs : int;
    (* source instructions the same positions dispatch under
       Backend_trace — the baseline of the reduction *)
  mutable just_completed : bool;
  (* debug_checks bookkeeping *)
  mutable invariant_violations : int;
  mutable seen_decays : int; (* decay boundary detector, like Profiler's *)
  (* self-heal bookkeeping *)
  mutable healed_nodes : int; (* BCG nodes repaired in place *)
  mutable in_debug_sweep : bool;
    (* re-entrancy guard: healing a node rechecks it, which can signal
       the builder, whose construction boundary would sweep again *)
}

(* One dispatch strategy.  [step] decides what to do with a block
   dispatched outside any trace; [on_block] is the full VM observer
   (shared following of an active trace, then [step]); [stats_into]
   overlays the counters this strategy maintains onto a Stats record, so
   the engine's end-of-run statistics compose from the strategies. *)
module type S = sig
  val name : string
  (* stable one-word identifier: "interp" / "profile" / "trace" *)

  val describe : string
  (* one-line human-readable description of the strategy *)

  val step : ctx -> Layout.gid -> unit
  (* process one block dispatched outside any trace *)

  val on_block : ctx -> Layout.gid -> unit
  (* the VM observer: follow the active trace if any, else [step] *)

  val poll_osr : ctx -> Layout.gid -> unit
  (* OSR entry point: feed one outside-trace dispatch to hot-loop
     detection.  The interp strategy ignores it, the profile strategy
     counts header heat, and the trace strategy acts on a threshold
     crossing by promoting the loop mid-iteration. *)

  val deopt_resume : ctx -> Layout.gid -> unit
  (* OSR exit point: process the block dispatch execution resumes at
     after a deoptimization — a plain dispatch that never consults the
     trace cache (the engine just abandoned a trace; re-entering one at
     the deopt transition would defeat the resume). *)

  val stats_into : ctx -> Stats.t -> Stats.t
  (* overlay this strategy's counters onto [s] *)
end

(* The engine's dispatch clock: the timestamp base of spans, the cache
   clock and the event stream alike. *)
let clock ctx = ctx.block_dispatches + ctx.trace_dispatches

let fr_trigger ctx reason =
  match ctx.flightrec with
  | Some fr -> Flightrec.trigger fr reason
  | None -> ()

let ledger_record ctx ?trace_id ?first ?head action =
  match ctx.ledger with
  | Some l -> Ledger.record l ?trace_id ?first ?head action
  | None -> ()

(* Attribution bumps; the arrays are [||] when Config.Obs.attribution is
   off, so the disabled path is one length test. *)
let attr_step ctx g =
  if Array.length ctx.attr_self > 0 then
    ctx.attr_self.(g) <- ctx.attr_self.(g) + 1

let attr_inline ctx g =
  if Array.length ctx.attr_inlined > 0 then
    ctx.attr_inlined.(g) <- ctx.attr_inlined.(g) + 1

(* Compiled-tier accounting for one followed trace position: what the
   micro-IR dispatch loop would have dispatched there versus the source
   instructions Backend_trace dispatches.  One length test when the
   active trace is on the interpreted tier. *)
let account_lowered ctx pos =
  match ctx.active_lowered with
  | None -> ()
  | Some b ->
      ctx.mi_positions <- ctx.mi_positions + 1;
      ctx.mi_ops <- ctx.mi_ops + b.Microir.pos_ops.(pos);
      ctx.mi_fused <- ctx.mi_fused + b.Microir.pos_fused.(pos);
      ctx.mi_src_instrs <- ctx.mi_src_instrs + b.Microir.pos_src.(pos)

(* Quarantine an entry transition and record the observability side of
   the episode: the backoff duration histogram (finite backoffs only —
   a permanent blacklist has no duration) and a closed quarantine span
   stretching to the backoff expiry. *)
let condemn ctx ~first ~head ~code =
  let removed = Trace_cache.quarantine ctx.cache ~first ~head ~code in
  (match Trace_cache.quarantine_until ctx.cache ~first ~head with
  | Some until ->
      let now = clock ctx in
      if until <> max_int then Metrics.record ctx.h_backoff (until - now);
      (match ctx.spans with
      | Some spans ->
          let permanent = until = max_int in
          let label =
            Printf.sprintf "%s entry (%d,%d)%s" code first head
              (if permanent then " permanent" else "")
          in
          ignore
            (Spans.emit spans ~kind:Spans.Quarantine ~label ~start_time:now
               ~end_time:(if permanent then now else until))
      | None -> ())
  | None -> ());
  removed

(* Walk the health ladder: publish the transition and, when climbing out
   of interp-only, drop the profiler's stale branch context (the skipped
   dispatches never updated it). *)
let apply_health ctx (transition : Health.transition) =
  match transition with
  | Health.Stay -> ()
  | Health.Changed (from_level, to_level) ->
      if Events.enabled ctx.events then
        if Health.level_rank to_level > Health.level_rank from_level then
          Events.emit ctx.events (Events.Mode_degraded { from_level; to_level })
        else
          Events.emit ctx.events
            (Events.Mode_recovered { from_level; to_level });
      (* hitting the bottom of the ladder is a postmortem moment: tracing
         is fully disabled, so capture how the engine got here *)
      if
        Health.level_rank to_level > Health.level_rank from_level
        && to_level = Health.Interp_only
      then fr_trigger ctx Flightrec.Degraded;
      if from_level = Health.Interp_only then Profiler.reset ctx.profiler

(* End the active trace after a completion. *)
let finish_completed ctx (tr : Trace.t) =
  ctx.just_completed <- true;
  tr.Trace.completed <- tr.Trace.completed + 1;
  Metrics.record ctx.h_trace_len (Trace.n_blocks tr);
  ctx.traces_completed <- ctx.traces_completed + 1;
  ctx.completed_blocks <- ctx.completed_blocks + Trace.n_blocks tr;
  ctx.completed_instrs <- ctx.completed_instrs + tr.Trace.total_instrs;
  ctx.active <- None;
  ctx.active_lowered <- None;
  Trace_cache.unpin ctx.cache tr;
  if Events.enabled ctx.events then
    Events.emit ctx.events
      (Events.Trace_completed
         {
           trace_id = tr.Trace.id;
           n_blocks = Trace.n_blocks tr;
           n_instrs = tr.Trace.total_instrs;
         });
  (* the profiler missed the trace interior: reposition its context at the
     trace's final branch *)
  Profiler.resync ctx.profiler ~x:ctx.prev2 ~y:ctx.prev

(* End the active trace after a side exit; the mismatching block has not
   been processed yet. *)
let finish_partial ctx (tr : Trace.t) =
  ctx.just_completed <- false;
  tr.Trace.partial_exits <- tr.Trace.partial_exits + 1;
  tr.Trace.partial_instrs <- tr.Trace.partial_instrs + ctx.matched_instrs;
  Metrics.record ctx.h_exit_distance ctx.matched_blocks;
  ctx.partial_blocks <- ctx.partial_blocks + ctx.matched_blocks;
  ctx.partial_instrs <- ctx.partial_instrs + ctx.matched_instrs;
  ctx.active <- None;
  ctx.active_lowered <- None;
  Trace_cache.unpin ctx.cache tr;
  if Events.enabled ctx.events then
    Events.emit ctx.events
      (Events.Side_exit
         {
           trace_id = tr.Trace.id;
           at_block = ctx.active_pos;
           matched_blocks = ctx.matched_blocks;
           matched_instrs = ctx.matched_instrs;
         });
  Profiler.resync ctx.profiler ~x:ctx.prev2 ~y:ctx.prev

(* OSR deoptimization: abandon the active trace at the current position
   and resume block dispatch at [resume].  A deopt *is* a side exit plus
   a state-equivalence proof: [finish_partial] does the exit bookkeeping
   (side-exit event, profiler resync, unpin), and the proof obligation —
   the materialized interpreter continuation already sits at the block
   dispatch resumes at, because the overlay never moved it — is checked
   against the live handle (TL219 on mismatch). *)
let deopt ctx (osr : Osr.t) (tr : Trace.t) ~resume ~(reason : Osr.reason) =
  let at = ctx.active_pos in
  let residue = Trace.n_blocks tr - at in
  (match Osr.materialized osr with
  | Some m ->
      Osr.note_state_check osr;
      let ok =
        match m.Vm.Interp.m_block with
        | Some b -> b = resume
        | None -> resume < 0
      in
      if not ok then begin
        Osr.note_state_mismatch osr;
        if Config.debug_checks ctx.config then begin
          ctx.invariant_violations <- ctx.invariant_violations + 1;
          if Events.enabled ctx.events then
            Events.emit ctx.events
              (Events.Invariant_violation
                 {
                   code = "TL219";
                   severity = "error";
                   message =
                     Printf.sprintf
                       "trace %d: deopt at position %d resumes at block %d \
                        but the interpreter materialized at %s"
                       tr.Trace.id at resume
                       (match m.Vm.Interp.m_block with
                       | Some b -> string_of_int b
                       | None -> "<stopped>");
                 });
          fr_trigger ctx Flightrec.Invariant
        end
      end
  | None -> ());
  finish_partial ctx tr;
  Metrics.record ctx.h_deopt_residue residue;
  Osr.note_deopt osr ~residue;
  if Events.enabled ctx.events then
    Events.emit ctx.events
      (Events.Deopt_entered
         {
           trace_id = tr.Trace.id;
           at_block = at;
           resume_block = resume;
           residue_blocks = residue;
           reason = Osr.reason_to_string reason;
         });
  ledger_record ctx ~trace_id:tr.Trace.id
    ~first:(fst (Trace.entry_key tr))
    ~head:(snd (Trace.entry_key tr))
    (Ledger.Deopt
       {
         at_pos = at;
         resume;
         residue;
         reason = Osr.reason_to_string reason;
       })

(* Mid-flight cut-over: deoptimize the currently executing trace (a
   sweep is condemning it).  Between dispatches there is no mismatching
   block to resume at; the resume point is wherever the interpreter
   materializes (-1 when no handle is attached), and the next observed
   block goes through the normal dispatch path. *)
let deopt_active ctx ~reason =
  match (ctx.active, ctx.osr) with
  | Some tr, Some osr ->
      let resume =
        match Osr.materialized osr with
        | Some m -> (
            match m.Vm.Interp.m_block with Some b -> b | None -> -1)
        | None -> -1
      in
      deopt ctx osr tr ~resume ~reason
  | _ -> ()

(* Run the invariant sweep (Config.debug_checks): count every finding and
   publish it on the stream.  Called at trace-construction and decay
   boundaries, never on the plain dispatch path.

   Under Config.self_heal the sweep also repairs what it found: flagged
   BCG nodes are healed in place (losing corrupted history, keeping the
   node profiling), flagged traces are quarantined, and the whole sweep
   counts as one strike against the health ladder. *)
let run_debug_checks ctx =
  if ctx.in_debug_sweep then ()
  else begin
    ctx.in_debug_sweep <- true;
    let sweep_span =
      match ctx.spans with
      | Some spans ->
          Spans.begin_span spans ~kind:Spans.Heal_sweep ~label:"invariant sweep"
            ~now:(clock ctx)
      | None -> -1
    in
    let bcg = Profiler.bcg ctx.profiler in
    let diags =
      Invariants.check_all ~layout:ctx.layout ctx.config ~bcg ~cache:ctx.cache
    in
    (* translation-validate traces the sweep has not seen yet: the
       optimized body must be provably equivalent to the original block
       sequence, and every pruning claim must re-derive.  Findings join
       the invariant diagnostics and flow through the same event /
       self-heal processing below. *)
    let diags = diags @ Trace_prover.validate_new ctx.layout ctx.cache in
    List.iter
      (fun (d : Analysis.Diag.t) ->
        ctx.invariant_violations <- ctx.invariant_violations + 1;
        if Events.enabled ctx.events then
          Events.emit ctx.events
            (Events.Invariant_violation
               {
                 code = d.Analysis.Diag.code;
                 severity =
                   Analysis.Diag.severity_to_string d.Analysis.Diag.severity;
                 message = Analysis.Diag.to_string d;
               }))
      diags;
    if diags <> [] then fr_trigger ctx Flightrec.Invariant;
    if Config.self_heal ctx.config && diags <> [] then begin
      let healed = Hashtbl.create 8 in
      let condemned = Hashtbl.create 8 in
      List.iter
        (fun (d : Analysis.Diag.t) ->
          match d.Analysis.Diag.loc with
          | Analysis.Diag.Node_loc { x; y } ->
              if not (Hashtbl.mem healed (x, y)) then begin
                Hashtbl.replace healed (x, y) ();
                match Bcg.find_node bcg ~x ~y with
                | Some n ->
                    if Bcg.heal_node bcg n then
                      ctx.healed_nodes <- ctx.healed_nodes + 1
                | None -> ()
              end
          | Analysis.Diag.Trace_loc { trace_id } ->
              if not (Hashtbl.mem condemned trace_id) then begin
                Hashtbl.replace condemned trace_id ();
                (* OSR mid-flight cut-over: when the flagged trace is
                   the one being executed right now, deoptimize first —
                   block dispatch resumes at the materialized state, the
                   execution pin drops, and the quarantine below is not
                   refused.  Without OSR the pin refuses the quarantine
                   and a later sweep (or dispatch validation) condemns
                   the trace once it has exited. *)
                (match ctx.active with
                | Some a when a.Trace.id = trace_id ->
                    deopt_active ctx ~reason:Osr.Condemned
                | _ -> ());
                (* quarantine by the trace's live entry binding *)
                let entry = ref None in
                Trace_cache.iter_entries ctx.cache (fun ~first ~head tr ->
                    if tr.Trace.id = trace_id then entry := Some (first, head));
                match !entry with
                | Some (first, head) ->
                    ignore (condemn ctx ~first ~head ~code:d.Analysis.Diag.code)
                | None -> ()
              end
          | Analysis.Diag.Method_loc _ | Analysis.Diag.Program_loc -> ())
        diags;
      apply_health ctx (Health.strike ctx.health)
    end;
    (match ctx.spans with
    | Some spans -> Spans.end_span spans sweep_span ~now:(clock ctx)
    | None -> ());
    ctx.in_debug_sweep <- false
  end

let note_executed ctx g =
  ctx.prev2 <- ctx.prev;
  ctx.prev <- g

(* The dispatch prologue every strategy runs first: advance the metrics
   clock and, when the self-healing or fault machinery is armed, the
   cache clock and the fault injector. *)
let prologue ctx =
  Metrics.tick ctx.metrics;
  if Config.self_heal ctx.config || Faults.is_active ctx.faults then begin
    let now = ctx.block_dispatches + ctx.trace_dispatches in
    Trace_cache.set_clock ctx.cache now;
    (* injected faults land just before the dispatch decision *)
    List.iter
      (fun (code, detail) ->
        if Events.enabled ctx.events then
          Events.emit ctx.events (Events.Fault_injected { code; detail }))
      (Faults.tick ctx.faults ~now
         ~bcg:(Profiler.bcg ctx.profiler)
         ~cache:ctx.cache ~active:ctx.active)
  end

(* Validate a trace the dispatch lookup produced, before entering it.
   Returns the code of the first violated invariant, or None when the
   trace is sound.  The binding key is checked first (a corrupted head
   block desynchronizes it), then the full TL2xx battery over the trace
   body — the cost self-healing pays per trace dispatch. *)
let validate_dispatch ctx (tr : Trace.t) ~prev ~cur : string option =
  let f, h = Trace.entry_key tr in
  if f <> prev || h <> cur then Some "TL202"
  else
    match
      Invariants.check_trace
        ~bcg:(Profiler.bcg ctx.profiler)
        ~layout:ctx.layout ctx.config tr
    with
    | [] -> None
    | d :: _ -> Some d.Analysis.Diag.code

(* Follow the active trace, if any; a block outside every trace goes to
   the strategy's [step].  Shared by every backend: an active trace is
   followed to its end regardless of health-level changes mid-trace.

   A guard can fail two ways: organically ([g <> expected]) or because
   an armed FT008 guard flip forces this position to fail.  Without OSR
   both take the classic side exit — leave the trace, reprocess [g]
   through the full dispatch path (it may enter another trace).  With
   OSR both *deoptimize*: the engine proves the interpreter already sits
   at [g] and resumes plain block dispatch there through the strategy's
   [deopt_resume], which never consults the trace cache. *)
let rec follow ~step ~deopt_resume ctx (g : Layout.gid) =
  match ctx.active with
  | None -> step ctx g
  | Some tr ->
      let expected = tr.Trace.blocks.(ctx.active_pos) in
      (* guard accounting: a pruned position's comparison still runs
         (traces are a pure overlay — results stay bit-identical) but is
         counted as elided, the cost a compiled backend would not pay *)
      let elided =
        Array.length tr.Trace.pruned > 0 && tr.Trace.pruned.(ctx.active_pos)
      in
      if elided then ctx.guards_elided <- ctx.guards_elided + 1
      else ctx.guards_checked <- ctx.guards_checked + 1;
      let forced =
        Faults.flip_now ctx.faults ~pos:ctx.active_pos
          ~n_blocks:(Trace.n_blocks tr)
      in
      if g = expected && not forced then begin
        note_executed ctx g;
        attr_inline ctx g;
        account_lowered ctx ctx.active_pos;
        ctx.matched_blocks <- ctx.matched_blocks + 1;
        ctx.matched_instrs <-
          ctx.matched_instrs + tr.Trace.instr_len.(ctx.active_pos);
        if ctx.active_pos = Trace.n_blocks tr - 1 then finish_completed ctx tr
        else ctx.active_pos <- ctx.active_pos + 1
      end
      else begin
        (* an *organic* mismatch on a pruned position disproves the
           pruning proof: the prover claimed this transition forced.
           Surface it as a TL217 violation when the checks are armed (a
           forced flip on a matching block proves nothing). *)
        if elided && g <> expected && Config.debug_checks ctx.config then begin
          ctx.invariant_violations <- ctx.invariant_violations + 1;
          if Events.enabled ctx.events then
            Events.emit ctx.events
              (Events.Invariant_violation
                 {
                   code = "TL217";
                   severity = "error";
                   message =
                     Printf.sprintf
                       "trace %d: pruned guard at position %d disproved at \
                        dispatch (expected block %d, executed %d)"
                       tr.Trace.id ctx.active_pos expected g;
                 });
          fr_trigger ctx Flightrec.Invariant
        end;
        match ctx.osr with
        | Some osr ->
            (* deoptimize: abandon the residue, resume block dispatch at
               the failing block *)
            deopt ctx osr tr ~resume:g
              ~reason:(if forced then Osr.Guard_flip else Osr.Guard_failure);
            deopt_resume ctx g
        | None ->
            (* side exit: leave the trace, then process g normally (it
               may itself enter another trace) *)
            finish_partial ctx tr;
            follow ~step ~deopt_resume ctx g
      end

(* The full VM observer a backend's [on_block] is built from: stamp the
   event clock, follow/step, then check for a decay boundary. *)
let observe ~step ~deopt_resume ctx (g : Layout.gid) =
  (* stamp the stream once per observed block; events emitted during this
     step carry the current dispatch index *)
  if Events.enabled ctx.events then
    Events.set_now ctx.events (ctx.block_dispatches + ctx.trace_dispatches);
  follow ~step ~deopt_resume ctx g;
  if Config.debug_checks ctx.config then begin
    (* decay boundary: the BCG ran one or more decay passes during this
       dispatch *)
    let d = (Profiler.bcg ctx.profiler).Bcg.decays in
    if d <> ctx.seen_decays then begin
      ctx.seen_decays <- d;
      run_debug_checks ctx
    end
  end
