(* Flight recorder: an always-on bounded ring buffer of the most recent
   events, span closures and metric deltas — the engine's black box.
   Recording is O(1) and retention is bounded by the ring capacity, so
   the recorder can stay armed on every run.  It never writes anything
   itself: when a trigger condition fires (invariant violation, chaos
   divergence, snapshot rejection, degradation to interp-only) it calls
   the [on_dump] hook installed by the harness, which serializes the
   ring through the codec into a postmortem artifact. *)

type entry =
  | Event of { seq : int; time : int; payload : Events.payload }
  | Span_closed of {
      seq : int;
      time : int;
      id : int;
      parent : int;
      kind : string;
      label : string;
      start_time : int;
    }
  | Metric_delta of {
      seq : int;
      time : int;
      name : string;
      delta : int;
      total : int;
    }

type dump_reason =
  | Invariant
  | Divergence
  | Snapshot_rejected
  | Degraded
  | Manual

let reason_to_string = function
  | Invariant -> "invariant_violation"
  | Divergence -> "chaos_divergence"
  | Snapshot_rejected -> "snapshot_rejected"
  | Degraded -> "degraded_interp_only"
  | Manual -> "manual"

let reason_of_string = function
  | "invariant_violation" -> Some Invariant
  | "chaos_divergence" -> Some Divergence
  | "snapshot_rejected" -> Some Snapshot_rejected
  | "degraded_interp_only" -> Some Degraded
  | "manual" -> Some Manual
  | _ -> None

(* Slot storage is split across parallel arrays and tuned so the hot
   path — one event per engine emission, tens of thousands per run —
   costs a single pointer store plus the cursor bump: the event pointer
   the stream already allocated is stored as-is, nothing is boxed, and
   no per-event tag or sequence number is written.  Discrimination
   works without a tag because writes are strictly sequential: a
   span/metric record stamps its own sequence number into [box_seqs] at
   its slot, so a slot whose [box_seqs] entry does not match the
   sequence number the window walk expects there must hold an event.
   Span closures and metric deltas are rare (trace lifecycle and
   snapshot boundaries), so those box their fields. *)
type box =
  | B_span of {
      id : int;
      parent : int;
      kind : string;
      label : string;
      start_time : int;
    }
  | B_metric of { name : string; delta : int; total : int }

(* The high-frequency event kinds — trace entry/exit/completion and
   decay ticks, the per-dispatch chatter that dominates the stream —
   carry nothing but small integers.  Those are copied field-by-field
   into [scalars], a flat unboxed int array: no write barrier, and the
   recorder holds no pointer into the young generation, so the minor GC
   never promotes them.  (Retaining the event pointer instead promotes
   nearly every emitted event to the major heap — the ring outlives each
   minor collection — which costs far more than the stores themselves.)
   Rare, richly-typed events keep the pointer path. *)
let scalar_width = 6 (* kind tag; time; up to 4 payload fields *)

let k_pointer = 0 (* scalar slot disarmed; the event lives in [evs] *)
let k_entered = 1
let k_side_exit = 2
let k_completed = 3
let k_decay = 4

type t = {
  cap : int;
  mutable evs : Events.event array;
      (* [[||]] until the first pointer-path event: [Events.event] has
         no nullary value to fill with, so the first recorded event
         seeds the array *)
  scalars : int array;  (* [scalar_width] ints per slot *)
  boxes : box option array;  (* span/metric slots only *)
  box_seqs : int array;  (* seq stamped when the slot got a box *)
  times : int array;  (* span/metric slots only; events carry their own *)
  mutable pos : int;  (* next write index; invariant pos = next_seq mod cap *)
  mutable next_seq : int;
  mutable dumps : int;
  mutable on_dump : (dump_reason -> unit) option;
}

let create ~capacity =
  let cap = max 2 capacity in
  {
    cap;
    evs = [||];
    scalars = Array.make (cap * scalar_width) 0;
    boxes = Array.make cap None;
    box_seqs = Array.make cap (-1);
    times = Array.make cap 0;
    pos = 0;
    next_seq = 0;
    dumps = 0;
    on_dump = None;
  }

let capacity t = t.cap
let recorded t = t.next_seq
let dropped t = max 0 (t.next_seq - t.cap)
let dumps t = t.dumps
let set_on_dump t f = t.on_dump <- Some f

(* Advance the cursor; branch instead of [mod] keeps an integer
   division off the per-event path. *)
let advance t i =
  t.next_seq <- t.next_seq + 1;
  t.pos <- (let p = i + 1 in if p = t.cap then 0 else p)

let record_event t (ev : Events.event) =
  let i = t.pos in
  let s = i * scalar_width in
  (match ev.Events.payload with
  | Events.Trace_entered { trace_id; chained } ->
      t.scalars.(s) <- k_entered;
      t.scalars.(s + 1) <- ev.Events.time;
      t.scalars.(s + 2) <- trace_id;
      t.scalars.(s + 3) <- (if chained then 1 else 0)
  | Events.Side_exit { trace_id; at_block; matched_blocks; matched_instrs }
    ->
      t.scalars.(s) <- k_side_exit;
      t.scalars.(s + 1) <- ev.Events.time;
      t.scalars.(s + 2) <- trace_id;
      t.scalars.(s + 3) <- at_block;
      t.scalars.(s + 4) <- matched_blocks;
      t.scalars.(s + 5) <- matched_instrs
  | Events.Trace_completed { trace_id; n_blocks; n_instrs } ->
      t.scalars.(s) <- k_completed;
      t.scalars.(s + 1) <- ev.Events.time;
      t.scalars.(s + 2) <- trace_id;
      t.scalars.(s + 3) <- n_blocks;
      t.scalars.(s + 4) <- n_instrs
  | Events.Decay_pass { decays } ->
      t.scalars.(s) <- k_decay;
      t.scalars.(s + 1) <- ev.Events.time;
      t.scalars.(s + 2) <- decays
  | _ ->
      if Array.length t.evs = 0 then t.evs <- Array.make t.cap ev;
      t.scalars.(s) <- k_pointer;
      t.evs.(i) <- ev);
  advance t i

let record_span_closed t ~time ~id ~parent ~kind ~label ~start_time =
  let i = t.pos in
  t.boxes.(i) <- Some (B_span { id; parent; kind; label; start_time });
  t.box_seqs.(i) <- t.next_seq;
  t.times.(i) <- time;
  advance t i

let record_metric_delta t ~time ~name ~delta ~total =
  let i = t.pos in
  t.boxes.(i) <- Some (B_metric { name; delta; total });
  t.box_seqs.(i) <- t.next_seq;
  t.times.(i) <- time;
  advance t i

let seq_of = function
  | Event e -> e.seq
  | Span_closed s -> s.seq
  | Metric_delta m -> m.seq

let time_of = function
  | Event e -> e.time
  | Span_closed s -> s.time
  | Metric_delta m -> m.time

(* Rebuild one boxed entry from a slot (dump path only).  The sequence
   number is implicit in the walk: writes are strictly sequential, so
   the slot for [seq] is [seq mod cap], and it holds a span/metric
   exactly when that write stamped [box_seqs]. *)
let entry_at t ~seq i : entry option =
  if t.box_seqs.(i) = seq then
    let time = t.times.(i) in
    match t.boxes.(i) with
    | Some (B_span s) ->
        Some
          (Span_closed
             {
               seq;
               time;
               id = s.id;
               parent = s.parent;
               kind = s.kind;
               label = s.label;
               start_time = s.start_time;
             })
    | Some (B_metric m) ->
        Some
          (Metric_delta
             { seq; time; name = m.name; delta = m.delta; total = m.total })
    | None -> None
  else
    let s = i * scalar_width in
    let k = t.scalars.(s) in
    if k = k_pointer then
      if Array.length t.evs = 0 then None
      else
        let ev = t.evs.(i) in
        Some
          (Event { seq; time = ev.Events.time; payload = ev.Events.payload })
    else
      let time = t.scalars.(s + 1) in
      let payload =
        if k = k_entered then
          Events.Trace_entered
            {
              trace_id = t.scalars.(s + 2);
              chained = t.scalars.(s + 3) = 1;
            }
        else if k = k_side_exit then
          Events.Side_exit
            {
              trace_id = t.scalars.(s + 2);
              at_block = t.scalars.(s + 3);
              matched_blocks = t.scalars.(s + 4);
              matched_instrs = t.scalars.(s + 5);
            }
        else if k = k_completed then
          Events.Trace_completed
            {
              trace_id = t.scalars.(s + 2);
              n_blocks = t.scalars.(s + 3);
              n_instrs = t.scalars.(s + 4);
            }
        else Events.Decay_pass { decays = t.scalars.(s + 2) }
      in
      Some (Event { seq; time; payload })

(* Oldest-first reconstruction of the surviving window. *)
let to_list t =
  let first = max 0 (t.next_seq - t.cap) in
  let acc = ref [] in
  for seq = t.next_seq - 1 downto first do
    let i = seq mod t.cap in
    match entry_at t ~seq i with Some e -> acc := e :: !acc | None -> ()
  done;
  !acc

let trigger t reason =
  t.dumps <- t.dumps + 1;
  match t.on_dump with Some f -> f reason | None -> ()
