module Layout = Cfg.Layout
module Block = Cfg.Block
module Instr = Bytecode.Instr
module Sx = Analysis.Symexec
module Cp = Analysis.Constprop
module Diag = Analysis.Diag

(* The proof layer over installed traces, used twice:

   1. Translation validation ([validate]): symbolically evaluate the
      trace's original block sequence and its optimized body and require
      observational equivalence (Analysis.Equiv) modulo guards, with the
      trailing dead-store license derived here — a slot may be dropped
      only if it is dead at the trace's normal exit AND no suffix of the
      code runs through a handler-covered block (the exceptional edge
      would observe it).

   2. Guard-implication pruning ([prune] / [check_pruned]): a forward
      walk over the trace accumulates a fact environment — constant/
      interval facts from Analysis.Constprop seeded at every block entry,
      interval refinements from each guard's known outcome, and the
      symbolic state itself — and marks a guard position as implied when
      the previous block's terminator provably transfers control to the
      expected next block and the block body provably cannot trap.  The
      dispatch loop then elides those positions (counting them instead of
      checking them); [check_pruned] re-derives the proofs and reports
      TL217 for any claimed pruning that no longer follows. *)

(* Structural soundness: what trace_code needs to not crash.  Corrupted
   traces (fault injection) are reported by Invariants as TL210/TL211;
   the prover just declines to reason about them. *)
let structurally_sound (layout : Layout.t) (tr : Trace.t) =
  let n = layout.Layout.n_blocks in
  Array.length tr.Trace.instr_len = Array.length tr.Trace.blocks
  && (tr.Trace.pruned = [||]
     || Array.length tr.Trace.pruned = Array.length tr.Trace.blocks)
  && Array.for_all (fun g -> g >= 0 && g < n) tr.Trace.blocks
  && Array.for_all2
       (fun g len -> Layout.block_len layout g = len)
       tr.Trace.blocks tr.Trace.instr_len

(* The dead-store license for Equiv: slot droppable iff dead at the
   final block's normal exit and its last store's suffix never enters a
   handler-covered block. *)
let dead_out_of (layout : Layout.t) (tr : Trace.t) : int -> bool =
  let live = Trace_optimizer.live_out_of layout tr in
  let covered_from = Trace_optimizer.covered_suffix_of layout tr in
  let code = Trace_optimizer.trace_code layout tr in
  let last_store : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun idx ins ->
      match ins with
      | Instr.Istore s | Instr.Fstore s | Instr.Astore s ->
          Hashtbl.replace last_store s idx
      | _ -> ())
    code;
  fun slot ->
    (not (live slot))
    &&
    match Hashtbl.find_opt last_store slot with
    | Some idx -> not (covered_from idx)
    | None -> true

(* ------------------------------------------------------------------ *)
(* Guard-implication pruning                                          *)
(* ------------------------------------------------------------------ *)

(* Derive the pruned-guard verdicts for a trace.  Position 0 is matched
   by the cache lookup itself (the entering transition), so only
   positions 1 .. n-1 — the follow-time guards — are candidates.

   Soundness notes.  The dispatch loop consults the guard at position i
   only after positions < i matched, so facts accumulated from earlier
   transitions are valid premises.  A transition out of block B is
   "forced" when B's body provably cannot trap (no undischarged trap
   conditions) and B's terminator provably targets the expected block:
   unconditionally (goto/fallthrough), by decided comparison (constant/
   interval facts), by static call target, or by a return whose matching
   call was seen earlier in the trace (the continuation ret-stack).
   Virtual calls, throws, undecided conditionals and returns entering
   the trace mid-callee are never forced. *)
let derive_pruned (layout : Layout.t) (tr : Trace.t) : bool array =
  let n = Array.length tr.Trace.blocks in
  let pruned = Array.make n false in
  if n < 2 then pruned
  else begin
    let program = layout.Layout.program in
    let cp_cache : (int, Cp.t) Hashtbl.t = Hashtbl.create 4 in
    let constprop mid =
      match Hashtbl.find_opt cp_cache mid with
      | Some c -> c
      | None ->
          let c =
            Cp.compute program (Layout.cfg_of_method layout ~method_id:mid)
          in
          Hashtbl.add cp_cache mid c;
          c
    in
    (* Fact tables are keyed by symbolic term.  A term's denotation is
       immutable (Slocal (e, s) is "the value at epoch e's start"), so a
       recorded fact never goes stale. *)
    let intervals : (Sx.sym, int * int) Hashtbl.t = Hashtbl.create 16 in
    let nonnull : (Sx.sym, unit) Hashtbl.t = Hashtbl.create 16 in
    let retstack : Layout.gid list ref = ref [] in
    let st = ref Sx.initial in
    let bounds_of v =
      match v with
      | Sx.Sint k -> Some (k, k)
      | _ -> Hashtbl.find_opt intervals v
    in
    let set_bounds v (lo, hi) =
      match v with
      | Sx.Sint _ -> ()
      | _ ->
          let lo, hi =
            match Hashtbl.find_opt intervals v with
            | Some (lo0, hi0) -> (max lo lo0, min hi hi0)
            | None -> (lo, hi)
          in
          if lo <= hi then Hashtbl.replace intervals v (lo, hi)
    in
    (* Merge the constprop entry facts of [g] for locals the symbolic
       state does not already track: an untracked local still holds its
       epoch-start value, so block-entry facts apply to Slocal terms. *)
    let seed_block_facts g =
      let mid = (Layout.method_of_gid layout g).Bytecode.Mthd.id in
      let bi = g - layout.Layout.offsets.(mid) in
      let cp = constprop mid in
      match cp.Cp.entry.(bi) with
      | Cp.Unreached -> ()
      | Cp.Reached { locals; _ } ->
          Array.iteri
            (fun slot av ->
              if not (Sx.tracks_local !st ~slot) then begin
                let e = !st.Sx.epoch in
                match av with
                | Cp.Int { lo; hi } when lo = hi ->
                    st := Sx.assume_local !st ~slot (Sx.Sint lo)
                | Cp.Int { lo; hi } ->
                    set_bounds (Sx.Slocal (e, slot)) (lo, hi)
                | Cp.Float_const f ->
                    st := Sx.assume_local !st ~slot (Sx.Sfloat f)
                | Cp.Null -> st := Sx.assume_local !st ~slot Sx.Snull
                | Cp.Nonnull ->
                    Hashtbl.replace nonnull (Sx.Slocal (e, slot)) ()
                | Cp.Top -> ()
              end)
            locals
    in
    let discharged (t : Sx.trap) =
      match (t.Sx.trap_kind, t.Sx.trap_args) with
      | "div_zero", [ d ] -> (
          match bounds_of d with
          | Some (lo, hi) -> lo > 0 || hi < 0
          | None -> false)
      | "negsize", [ s ] -> (
          match bounds_of s with Some (lo, _) -> lo >= 0 | None -> false)
      | "null", [ o ] -> Hashtbl.mem nonnull o
      | _ -> false
    in
    (* Decide a condition between interval-bounded operands; the cond is
       applied as in the interpreter: [a cond b]. *)
    let decide_cmp (c : Instr.cond) (alo, ahi) (blo, bhi) =
      match c with
      | Instr.Eq ->
          if alo = ahi && blo = bhi && alo = blo then Some true
          else if ahi < blo || alo > bhi then Some false
          else None
      | Instr.Ne ->
          if ahi < blo || alo > bhi then Some true
          else if alo = ahi && blo = bhi && alo = blo then Some false
          else None
      | Instr.Lt ->
          if ahi < blo then Some true
          else if alo >= bhi then Some false
          else None
      | Instr.Ge ->
          if alo >= bhi then Some true
          else if ahi < blo then Some false
          else None
      | Instr.Gt ->
          if alo > bhi then Some true
          else if ahi <= blo then Some false
          else None
      | Instr.Le ->
          if ahi <= blo then Some true
          else if alo > bhi then Some false
          else None
    in
    let decide c a b =
      match (bounds_of a, bounds_of b) with
      | Some ba, Some bb -> decide_cmp c ba bb
      | _ -> None
    in
    (* Refine the interval of [v] knowing [v cond k] holds. *)
    let refine_vs_const v (c : Instr.cond) k =
      match c with
      | Instr.Eq -> set_bounds v (k, k)
      | Instr.Lt -> set_bounds v (min_int, k - 1)
      | Instr.Ge -> set_bounds v (k, max_int)
      | Instr.Gt -> set_bounds v (k + 1, max_int)
      | Instr.Le -> set_bounds v (min_int, k)
      | Instr.Ne -> (
          (* only endpoint trims are expressible as intervals *)
          match bounds_of v with
          | Some (lo, hi) when lo = k -> set_bounds v (lo + 1, hi)
          | Some (lo, hi) when hi = k -> set_bounds v (lo, hi - 1)
          | _ -> ())
    in
    let flip = function
      | Instr.Lt -> Instr.Gt
      | Instr.Gt -> Instr.Lt
      | Instr.Ge -> Instr.Le
      | Instr.Le -> Instr.Ge
      | (Instr.Eq | Instr.Ne) as c -> c
    in
    (* Knowing [a cond b] held, mine interval refinements. *)
    let refine_icmp (c : Instr.cond) a b =
      (match b with Sx.Sint k -> refine_vs_const a c k | _ -> ());
      match a with Sx.Sint k -> refine_vs_const b (flip c) k | _ -> ()
    in
    let broken = ref false in
    for i = 1 to n - 1 do
      if not !broken then begin
        let prev_g = tr.Trace.blocks.(i - 1) in
        let cur_g = tr.Trace.blocks.(i) in
        seed_block_facts prev_g;
        let b = Layout.block layout prev_g in
        let m = Layout.method_of_gid layout prev_g in
        let code = m.Bytecode.Mthd.code in
        let mid = m.Bytecode.Mthd.id in
        let gid_at pc = Layout.gid_at_pc layout ~method_id:mid ~pc in
        let traps_before = List.length !st.Sx.traps in
        let exec_range lo hi =
          for pc = lo to hi - 1 do
            st := Sx.exec !st code.(pc)
          done
        in
        (* undischarged trap conditions recorded by this block's body? *)
        let body_clean () =
          let rec fresh k traps =
            if k = 0 then []
            else
              match traps with
              | t :: tl -> t :: fresh (k - 1) tl
              | [] -> []
          in
          let added = List.length !st.Sx.traps - traps_before in
          List.for_all discharged (fresh added !st.Sx.traps)
        in
        let body_end = Block.end_pc b in
        let forced =
          match b.Block.term with
          | Block.T_goto t | Block.T_fallthrough t ->
              exec_range b.Block.start_pc body_end;
              gid_at t = cur_g && body_clean ()
          | Block.T_throw ->
              exec_range b.Block.start_pc body_end;
              false
          | Block.T_return ->
              exec_range b.Block.start_pc body_end;
              (match !retstack with
              | r :: rest ->
                  retstack := rest;
                  r = cur_g && body_clean ()
              | [] -> false)
          | Block.T_call { next_pc; virtual_ } ->
              exec_range b.Block.start_pc body_end;
              retstack := gid_at next_pc :: !retstack;
              if virtual_ then false
              else begin
                match code.(Block.last_pc b) with
                | Instr.Invokestatic callee ->
                    Layout.gid_at_pc layout ~method_id:callee ~pc:0 = cur_g
                    && body_clean ()
                | _ -> false
              end
          | Block.T_switch { low; targets; default } ->
              exec_range b.Block.start_pc (body_end - 1);
              let v, _ = Sx.pop !st in
              let decided =
                match bounds_of v with
                | Some (lo, hi) when lo = hi ->
                    let t =
                      if lo >= low && lo < low + Array.length targets then
                        targets.(lo - low)
                      else default
                    in
                    Some (gid_at t)
                | _ -> None
              in
              st := Sx.exec !st code.(body_end - 1);
              (match decided with
              | Some g -> g = cur_g && body_clean ()
              | None -> false)
          | Block.T_cond (c, tpc, fpc) ->
              exec_range b.Block.start_pc (body_end - 1);
              let ins = code.(body_end - 1) in
              let operands =
                match ins with
                | Instr.If_icmp (_, _) ->
                    let b2, st' = Sx.pop !st in
                    let a, _ = Sx.pop st' in
                    Some (a, Some b2)
                | Instr.Ifz (_, _) ->
                    let a, _ = Sx.pop !st in
                    Some (a, None)
                | _ -> None
              in
              let decided =
                match operands with
                | Some (a, Some b2) -> decide c a b2
                | Some (a, None) -> decide c a (Sx.Sint 0)
                | None -> None
              in
              st := Sx.exec !st ins;
              let taken_g = gid_at tpc and fall_g = gid_at fpc in
              if taken_g = fall_g then
                if cur_g = taken_g then body_clean ()
                else begin
                  broken := true;
                  false
                end
              else begin
                let went_taken =
                  if cur_g = taken_g then Some true
                  else if cur_g = fall_g then Some false
                  else None
                in
                match went_taken with
                | None ->
                    (* the recorded transition matches neither successor:
                       the body is not the one this walk assumed *)
                    broken := true;
                    false
                | Some way ->
                    (* the trace asserts this outcome; mine it, whether
                       or not the guard itself gets pruned *)
                    let holds = if way then c else Instr.negate_cond c in
                    (match operands with
                    | Some (a, Some b2) -> refine_icmp holds a b2
                    | Some (a, None) -> refine_vs_const a holds 0
                    | None -> ());
                    (match decided with
                    | Some d -> d = way && body_clean ()
                    | None -> false)
              end
        in
        pruned.(i) <- forced
      end
    done;
    if !broken then Array.map (fun _ -> false) pruned else pruned
  end

let prune (layout : Layout.t) (tr : Trace.t) : int =
  if not (structurally_sound layout tr) then 0
  else begin
    let p = derive_pruned layout tr in
    if Array.exists (fun x -> x) p then begin
      tr.Trace.pruned <- p;
      Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 p
    end
    else 0
  end

let check_pruned ?context (layout : Layout.t) (tr : Trace.t) : Diag.t list =
  if tr.Trace.pruned = [||] || not (structurally_sound layout tr) then []
  else begin
    let fresh = derive_pruned layout tr in
    let diags = ref [] in
    Array.iteri
      (fun i claimed ->
        if claimed && not (i < Array.length fresh && fresh.(i)) then
          diags :=
            Diag.make ?context ~code:"TL217" ~severity:Diag.Error
              ~loc:(Diag.Trace_loc { trace_id = tr.Trace.id })
              (Printf.sprintf
                 "pruned guard at position %d (block %d) is not \
                  re-derivable: the implication proof no longer holds"
                 i tr.Trace.blocks.(i))
            :: !diags)
      tr.Trace.pruned;
    !diags
  end

(* ------------------------------------------------------------------ *)
(* Translation validation                                             *)
(* ------------------------------------------------------------------ *)

let validate ?context (layout : Layout.t) (tr : Trace.t) : Diag.t list =
  if not (structurally_sound layout tr) then
    (* leave the structural story to Invariants' TL210/TL211 *)
    [
      Diag.make ?context ~code:"TL218" ~severity:Diag.Warning
        ~loc:(Diag.Trace_loc { trace_id = tr.Trace.id })
        "trace body is structurally unsound; translation validation skipped";
    ]
  else begin
    let r = Trace_optimizer.optimize layout tr in
    let dead_out = dead_out_of layout tr in
    Analysis.Equiv.check ?context ~dead_out ~trace_id:tr.Trace.id
      ~original:r.Trace_optimizer.original ~optimized:r.Trace_optimizer.optimized
      ()
    @ check_pruned ?context layout tr
    @ Tier.check_lowered ?context layout tr
  end

let check_cache ?context (layout : Layout.t) (cache : Trace_cache.t) :
    Diag.t list =
  let acc = ref [] in
  Trace_cache.iter_all cache (fun tr ->
      acc := validate ?context layout tr @ !acc);
  List.rev !acc

let validate_new ?context (layout : Layout.t) (cache : Trace_cache.t) :
    Diag.t list =
  let acc = ref [] in
  Trace_cache.iter_all cache (fun tr ->
      if (not tr.Trace.validated) && structurally_sound layout tr then begin
        tr.Trace.validated <- true;
        acc := validate ?context layout tr @ !acc
      end);
  List.rev !acc
