(** Decision ledger: one compact attribution record per consequential
    engine action, each linked to the originating span id and dispatch
    tick.  [Harness.Oracle.ledger_checks] reconciles aggregate ledger
    counts against [Stats] so the two can never drift. *)

type action =
  | Build of { new_traces : int; reused : int; pruned : int }
      (** A builder outcome (profiler signal or OSR promotion). *)
  | Install of { replaced : bool; n_blocks : int }
      (** A trace bound into the cache ([replaced] = displaced a
          predecessor at the same entry key). *)
  | Guard_prune of { pruned : int }
      (** Guards elided by implication proofs at installation. *)
  | Quarantine of {
      code : string;
      attempts : int;
      until : int;
      permanent : bool;
    }
      (** Entry quarantined; [until] is the backoff deadline tick and
          [permanent] marks a blacklist. *)
  | Evict of { reason : string; footprint : int; heat : int; stamp : int }
      (** Victim selection inputs: policy reason, footprint bytes, use
          count, and last-used stamp of the evicted trace. *)
  | Compile of {
      heat : int;
      compile_after : int;
      budget : int;
      n_compiled : int;
    }
      (** Tier promotion, with the heat-vs-threshold and budget state
          that justified it. *)
  | Demote of { heat : int; winner_heat : int }
      (** Compiled victim demoted to make budget room for a hotter
          trace. *)
  | Osr_promote of { header : int; latch : int; hotness : int }
  | Deopt of { at_pos : int; resume : int; residue : int; reason : string }

val action_kind : action -> string
(** Stable wire tag ("build", "install", "evict", ...). *)

type record = {
  seq : int;
  tick : int;
  span : int;
  trace_id : int;
  first : int;
  head : int;
  action : action;
}

type t

val create : unit -> t

val set_sources : t -> tick:(unit -> int) -> span:(unit -> int) -> unit
(** Install the dispatch-tick and open-span thunks (engine wiring). *)

val length : t -> int

val record :
  t -> ?trace_id:int -> ?first:int -> ?head:int -> action -> unit

val iter : (record -> unit) -> t -> unit
val to_list : t -> record list
val for_trace : t -> int -> record list
val for_block : t -> int -> record list

val totals : t -> (string * int) list
(** Record count per action kind, sorted by kind. *)
