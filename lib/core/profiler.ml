module Layout = Cfg.Layout

(* The profiling mechanism (paper §4.1.2).

   The interpreter's hook into the profiler is the *branch context*: the
   BCG node for the last branch taken.  Cached in the context is the
   address of the block believed most likely to be dispatched next (the
   inline cache).  On each profiled dispatch of block [z]:

   - if the inline cache predicts [z], only counters move (fast path);
   - otherwise the context's successor list is searched and, if the branch
     has never been seen in this context, a new correlation edge is
     lazily constructed;
   - the new branch context is then loaded through the correlation's
     target pointer.

   Trace dispatch executes this hook once per *trace*; the engine calls
   [resync] after a trace ends so the context reflects the trace's last
   branch without the interior blocks having been profiled. *)

type t = {
  bcg : Bcg.t;
  events : Events.t;
  mutable last : Layout.gid; (* previously dispatched block, -1 at start *)
  mutable ctx : Bcg.node option; (* node N(last', last) *)
  mutable dispatches : int; (* profiled dispatches = hook executions *)
  mutable predictions : int; (* inline-cache hits, for overhead modeling *)
  mutable seen_decays : int; (* BCG decay passes already published *)
  mutable skipped : int; (* dispatches not profiled (interp-only health) *)
}

let create ?(events = Events.create ()) (config : Config.t) ~n_blocks
    ~on_signal =
  (* publish every BCG signal on the stream before the trace machinery
     reacts to it, so the timeline shows cause before effect *)
  let on_signal signal =
    if Events.enabled events then
      Events.emit events
        (Events.Signal_raised
           {
             x = signal.Bcg.s_node.Bcg.n_x;
             y = signal.Bcg.s_node.Bcg.n_y;
             old_state = signal.Bcg.s_old_state;
             new_state = signal.Bcg.s_new_state;
             best_changed = signal.Bcg.s_best_changed;
           });
    on_signal signal
  in
  {
    bcg = Bcg.create config ~n_blocks ~on_signal;
    events;
    last = -1;
    ctx = None;
    dispatches = 0;
    predictions = 0;
    seen_decays = 0;
    skipped = 0;
  }

let events t = t.events

let bcg t = t.bcg

let dispatches t = t.dispatches

let signals t = t.bcg.Bcg.signals

let predictions t = t.predictions

let skipped t = t.skipped

(* One unprofiled dispatch: the engine is in the interp-only health level
   and bypassed the hook entirely.  The context is stale afterwards, so
   the engine must [reset] before profiling resumes. *)
let note_skipped t = t.skipped <- t.skipped + 1

(* One profiled dispatch of block [z]. *)
let dispatch t (z : Layout.gid) =
  t.dispatches <- t.dispatches + 1;
  let y = t.last in
  if y >= 0 then begin
    (* the branch (y, z) was just taken: visit its node *)
    let target = Bcg.visit_node t.bcg ~x:y ~y:z in
    (match t.ctx with
    | Some ctx ->
        (* inline-cache accounting: did the cached best successor predict
           this block? *)
        (match ctx.Bcg.best with
        | Some e when e.Bcg.e_z = z -> t.predictions <- t.predictions + 1
        | Some _ | None -> ());
        Bcg.record_successor t.bcg ~ctx ~target
    | None -> ());
    t.ctx <- Some target
  end;
  t.last <- z;
  (* decay runs lazily inside node visits; publish passes that happened
     during this dispatch *)
  if Events.enabled t.events then begin
    let d = t.bcg.Bcg.decays in
    if d <> t.seen_decays then begin
      t.seen_decays <- d;
      Events.emit t.events (Events.Decay_pass { decays = d })
    end
  end

(* Re-establish the branch context after unprofiled (in-trace) execution:
   the last two dispatched blocks were [x] then [y].  The context node is
   looked up but not counted — the trace's interior was executed without
   profiling hooks. *)
let resync t ~(x : Layout.gid) ~(y : Layout.gid) =
  t.last <- y;
  t.ctx <- (if x >= 0 then Bcg.find_node t.bcg ~x ~y else None)

let reset t =
  t.last <- -1;
  t.ctx <- None
