module Layout = Cfg.Layout

(* On-stack replacement (ROADMAP item 4): the machinery that lets the
   engine switch between block dispatch and trace dispatch *inside* a
   trace or a loop iteration, instead of only at trace boundaries.

   Two directions:

   - Deoptimization (trace -> blocks).  When a guard fails at position k
     of a trace — or a Health/Trace_prover sweep condemns the trace being
     executed — the engine abandons the residue and resumes block
     dispatch at the failing block.  Because trace dispatch is a pure
     observational overlay, "reconstructing interpreter state" is a
     proof obligation rather than a transformation: the interpreter is
     already exactly where pure block dispatch would be, and [deopt]
     checks it (TL219) by materializing the live continuation
     ([Vm.Interp.materialize]) and comparing its innermost block against
     the block dispatch resumes at.

   - Promotion (blocks -> trace).  Hot-loop detection counts
     outside-trace dispatches of natural-loop headers ([Analysis.Loops]
     over every method CFG); when a header crosses [promote_after], the
     currently executing loop is promoted into a freshly built trace
     mid-iteration ([Trace_builder.promote]), keyed by its back edge —
     so it is entered at the header on the very next latch->header
     transition.

   This module holds the detection tables, the materialization hook and
   the OSR counters; the dispatch-loop integration lives in [Backend]
   (deopt) and [Backend_trace]/[Backend_profile] (promotion). *)

type reason = Guard_failure | Guard_flip | Condemned

let reason_to_string = function
  | Guard_failure -> "guard-failure"
  | Guard_flip -> "guard-flip"
  | Condemned -> "condemned"

type t = {
  promote_after : int;
  is_header : bool array; (* gid -> natural-loop header? *)
  header_hits : int array; (* gid -> outside-trace dispatches since reset *)
  mutable materialize_fn : unit -> Vm.Interp.materialized option;
      (* set by whoever owns the interpreter handle (Engine.drive /
         Session.add); stays [fun () -> None] for observer-only drivers,
         which skip the state check *)
  mutable armed_trace : int;
      (* trace id of the latest promotion, awaiting its first entry;
         -1 = none *)
  mutable deopts : int;
  mutable residue_blocks : int; (* abandoned trace positions, summed *)
  mutable promotions : int;
  mutable entries : int; (* promoted-trace entries actually taken *)
  mutable state_checks : int; (* deopts that could materialize state *)
  mutable state_mismatches : int; (* TL219 findings *)
}

let create ~promote_after (layout : Layout.t) =
  if promote_after < 1 then invalid_arg "Osr.create: promote_after < 1";
  let n = layout.Layout.n_blocks in
  let is_header = Array.make n false in
  Array.iteri
    (fun mid cfg ->
      let loops = Analysis.Loops.compute cfg in
      Array.iter
        (fun (l : Analysis.Loops.loop) ->
          let g =
            Layout.gid layout ~method_id:mid
              ~block_index:l.Analysis.Loops.header
          in
          is_header.(g) <- true)
        loops.Analysis.Loops.loops)
    layout.Layout.cfgs;
  {
    promote_after;
    is_header;
    header_hits = Array.make n 0;
    materialize_fn = (fun () -> None);
    armed_trace = -1;
    deopts = 0;
    residue_blocks = 0;
    promotions = 0;
    entries = 0;
    state_checks = 0;
    state_mismatches = 0;
  }

let set_materialize t f = t.materialize_fn <- f

let materialized t = t.materialize_fn ()

let is_header t g = g >= 0 && g < Array.length t.is_header && t.is_header.(g)

(* One outside-trace dispatch of [g].  Returns the crossing hotness when
   the promotion threshold is reached and [promote] allows acting on it;
   with [promote = false] (a profiling-only backend, or trace building
   disabled) the counter saturates at the threshold instead, so the heat
   survives until a trace-building backend can act. *)
let observe_header t g ~promote =
  if not (is_header t g) then None
  else begin
    let h = t.header_hits.(g) + 1 in
    if h >= t.promote_after then
      if promote then begin
        t.header_hits.(g) <- 0;
        Some h
      end
      else begin
        t.header_hits.(g) <- t.promote_after;
        None
      end
    else begin
      t.header_hits.(g) <- h;
      None
    end
  end

let note_promotion t ~trace_id =
  t.promotions <- t.promotions + 1;
  t.armed_trace <- trace_id

(* Called at every trace entry: counts the first entry of the latest
   promoted trace as an OSR entry taken. *)
let note_entry t ~trace_id =
  if trace_id = t.armed_trace then begin
    t.entries <- t.entries + 1;
    t.armed_trace <- -1
  end

let note_deopt t ~residue =
  t.deopts <- t.deopts + 1;
  t.residue_blocks <- t.residue_blocks + max 0 residue

let note_state_check t = t.state_checks <- t.state_checks + 1

let note_state_mismatch t = t.state_mismatches <- t.state_mismatches + 1

let deopts t = t.deopts

let residue_blocks t = t.residue_blocks

let promotions t = t.promotions

let entries t = t.entries

let state_checks t = t.state_checks

let state_mismatches t = t.state_mismatches

let promote_after t = t.promote_after
