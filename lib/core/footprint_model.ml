(* The single definition of the byte-cost model shared by the
   footprint-aware eviction policy (Trace_cache) and the harness
   footprint report (Harness.Footprint), so the ablation table and the
   report cannot drift apart.

   Sizes are estimated from the representation (paper §3.5: "we
   carefully represent blocks, nodes, and edges to minimize memory
   overhead"): a BCG node is two block ids, four small counters, a
   state tag, an inline-cache pointer and a predecessor list entry; an
   edge is a target id, a pointer and a 16-bit counter.  Trace cache
   code size counts one threaded-code slot per instruction of every
   live trace, as a direct-threaded code cache would. *)

let node_bytes = 56 (* 2 ids + 4 counters + tag + 2 pointers, words *)

let edge_bytes = 24 (* id + pointer + counter *)

let instr_bytes = 8 (* one threaded-code slot per instruction *)

let microp_bytes = 16 (* one decoded micro-op: opcode + registers/immediate *)

(* A compiled trace keeps its threaded source view (deopt re-enters it)
   and adds the lowered register body, so its footprint is the sum. *)
let trace_bytes (tr : Trace.t) =
  (tr.Trace.total_instrs * instr_bytes)
  + match tr.Trace.lowered with
    | Some b -> Microir.n_ops b * microp_bytes
    | None -> 0

let cache_bytes ~trace_instrs = trace_instrs * instr_bytes

let bcg_bytes ~nodes ~edges = (nodes * node_bytes) + (edges * edge_bytes)
