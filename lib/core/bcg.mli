(** The branch correlation graph (paper §3.5, §4.1) — effectively a
    depth-one per-address branch history table.

    There is one node [N_XY] for every pair of basic blocks [(X, Y)]
    observed executing in sequence, and one edge [E_XYZ] from [N_XY] to
    [N_YZ] for every observed triple: the edge counter measures how often
    branch [(Y, Z)] follows branch [(X, Y)].

    Counters are 16-bit and saturating; one observation is worth
    {!event_weight} counter units, so a single observation survives
    [log2 event_weight] decay shifts — the paper's 2048-execution history
    clearing.  Every {!Config.t.decay_period} executions of a node its
    edge weights are shifted right one bit and dead edges are pruned;
    during decay the node's state and maximally correlated successor are
    re-evaluated and changes are signalled to the trace cache. *)

type node = {
  n_x : Cfg.Layout.gid;
  n_y : Cfg.Layout.gid;
  mutable exec_total : int;  (** lifetime executions, for statistics *)
  mutable delay_left : int;  (** start-state countdown *)
  mutable since_decay : int;
  mutable state : State.t;
  mutable edges : edge list;
      (** successor correlations; real programs keep this short *)
  mutable best : edge option;
      (** inline cache: the successor currently believed most likely *)
  mutable best_at_recheck : Cfg.Layout.gid;
      (** snapshot of the maximally correlated successor at the last
          recheck; the "best changed" signal compares against this, not
          the live inline cache (-1 = none) *)
  mutable preds : node list;  (** nodes with an edge into this one *)
}

and edge = {
  e_z : Cfg.Layout.gid;  (** the successor block: this edge targets [N_YZ] *)
  e_target : node;
  mutable weight : int;
}

type signal = {
  s_node : node;
  s_old_state : State.t;
  s_new_state : State.t;
  s_best_changed : bool;
}
(** Raised when a branch crossed the followable boundary or a followable
    branch's maximally correlated successor changed (paper §4.1.1). *)

type t = {
  config : Config.t;
  n_blocks : int;
  nodes : (int, node) Hashtbl.t;
  on_signal : signal -> unit;
  mutable node_count : int;
  mutable edge_count : int;
  mutable decays : int;
  mutable signals : int;
}

val event_weight : int
(** Counter units per observed branch event (256, so a 16-bit counter
    holds 256 events and one event takes 8 decay shifts to clear). *)

val create : Config.t -> n_blocks:int -> on_signal:(signal -> unit) -> t

val find_node : t -> x:Cfg.Layout.gid -> y:Cfg.Layout.gid -> node option
(** Lookup without creation (used to resynchronize after traces). *)

val visit_node : t -> x:Cfg.Layout.gid -> y:Cfg.Layout.gid -> node
(** Record one execution of branch [(x, y)]: finds or lazily creates the
    node, counts down the start-state delay (promoting and re-evaluating
    when it elapses), and runs periodic decay. *)

val record_successor : t -> ctx:node -> target:node -> unit
(** Record that [target]'s branch followed [ctx]'s branch: bump or create
    the correlation edge, saturating, and keep [ctx]'s inline cache
    current. *)

val find_edge : node -> Cfg.Layout.gid -> edge option

val total_weight : node -> int
(** Sum of outgoing edge weights: the denominator of every correlation. *)

val correlation : node -> edge -> float
(** The probability of taking the edge's branch given the node's branch
    was just taken: [weight / total_weight], in [0, 1]. *)

val best_edge : node -> edge option
(** The heaviest outgoing edge right now. *)

val evaluate_state : t -> node -> State.t * edge option
(** Classify a hot node from its current edges (does not mutate). *)

val recheck : t -> node -> unit
(** Re-evaluate state and maximally correlated successor, updating the
    node and signalling the trace cache if anything it acts on changed.
    Runs at start-state promotion and during decay. *)

val decay : t -> node -> unit
(** One periodic exponential decay pass: halve this node's edge weights,
    prune dead edges, then {!recheck}. *)

val heal_node : t -> node -> bool
(** Clamp the node's edge weights, decay and start-state bookkeeping back
    into their legal ranges, then {!recheck} so the inline cache and
    correlation state are recomputed from the repaired edges (signalling
    as usual).  Returns [true] when a field actually changed.  The
    self-healing engine calls this on nodes an invariant check flagged;
    the node loses corrupted history but keeps profiling, and its
    correlations re-converge within one decay period. *)

(** {2 Warm-start snapshots} *)

type node_snap = {
  ns_x : Cfg.Layout.gid;
  ns_y : Cfg.Layout.gid;
  ns_exec_total : int;
  ns_delay_left : int;
  ns_since_decay : int;
  ns_state : State.t;
  ns_best_at_recheck : Cfg.Layout.gid;
  ns_edges : (Cfg.Layout.gid * int) list;
      (** (successor block, counter weight), sorted by successor *)
}
(** One node flattened for persistence — the value half of the
    [Persist] binary format. *)

val snapshot : t -> node_snap list
(** The whole graph in canonical order (nodes by [(x, y)], edges by
    successor), so snapshot → {!restore} → snapshot is bit-identical. *)

val restore : t -> node_snap list -> unit
(** Rebuild the graph from a snapshot: nodes with their counters and
    states, then edges, predecessor lists and inline caches.  No signal
    is raised — the trace-cache half of the same snapshot already holds
    the traces those signals built.
    @raise Invalid_argument if the graph is non-empty or an edge targets
    a node absent from the snapshot. *)

val iter_nodes : t -> (node -> unit) -> unit

val n_nodes : t -> int

val n_edges : t -> int

val pp_node : Cfg.Layout.t -> Format.formatter -> node -> unit
