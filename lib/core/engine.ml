module Layout = Cfg.Layout
module Interp = Vm.Interp

(* The complete system: the VM's block-dispatch stream drives the profiler;
   profiler signals drive trace reconstruction; and the trace cache overlays
   trace dispatch onto the stream.

   The engine is a thin shell over the Backend layer: it owns one
   Backend.ctx (the dispatch state every strategy shares) and selects a
   dispatch backend per observed block from the Health ladder —

     Full_tracing  + build_traces -> Backend_trace
     Full_tracing  (no traces)    -> Backend_profile
     Profiling_only               -> Backend_profile
     Interp_only                  -> Backend_interp

   so walking the degradation ladder IS switching backends.  A backend
   can also be pinned at creation (tests, the `repro_cli backends`
   inspection command), in which case the ladder still runs its
   accounting but never changes the dispatch strategy.

   Dispatch accounting mirrors the modified SableVM:

   - a block dispatched outside any trace executes the profiler hook and
     counts as one block dispatch;
   - a dispatch that enters a trace executes the hook once and counts as
     one *trace* dispatch; the blocks the trace then executes internally
     are inlined — no dispatch, no hook;
   - when execution diverges from the trace (side exit) or the trace
     completes, the profiler context is resynchronized to the last two
     executed blocks and normal dispatching resumes.

   Because every strategy observes the same stream and tracing is a pure
   overlay, the VM's results are bit-identical under any backend, any
   ladder schedule and any fault schedule. *)

type backend_kind = Interp | Profile | Trace | Microir

let backend_kind_name = function
  | Interp -> Backend_interp.name
  | Profile -> Backend_profile.name
  | Trace -> Backend_trace.name
  | Microir -> Backend_microir.name

let backend_kind_of_string = function
  | "interp" -> Some Interp
  | "profile" -> Some Profile
  | "trace" -> Some Trace
  | "microir" -> Some Microir
  | _ -> None

let implementation : backend_kind -> (module Backend.S) = function
  | Interp -> (module Backend_interp)
  | Profile -> (module Backend_profile)
  | Trace -> (module Backend_trace)
  | Microir -> (module Backend_microir)

let backends = [ Interp; Profile; Trace; Microir ]

(* The ladder-to-backend mapping.  Note build_traces only matters at the
   top level: the cache is only ever consulted by Backend_trace /
   Backend_microir.  The compiled tier rides the top rung only — any
   degradation drops it with the rest of trace dispatch. *)
let select config (level : Health.level) : backend_kind =
  match level with
  | Health.Interp_only -> Interp
  | Health.Profiling_only -> Profile
  | Health.Full_tracing ->
      if not (Config.build_traces config) then Profile
      else if Config.tier_enabled config then Microir
      else Trace

type t = {
  ctx : Backend.ctx;
  pinned : bool; (* backend forced at creation: never re-selected *)
  mutable kind : backend_kind;
  mutable kind_level : Health.level; (* level [kind] was selected from *)
  mutable backend_switches : int; (* strategy changes over the run *)
  mutable snapshots_rejected : int; (* warm-start loads refused *)
}

(* Expose the accounting through the registry as polled gauges: nothing
   on the dispatch path, evaluated only when a snapshot is taken. *)
let register_gauges (m : Metrics.t) (t : t) =
  let e = t.ctx in
  Metrics.gauge m "block_dispatches" (fun () -> e.Backend.block_dispatches);
  Metrics.gauge m "trace_dispatches" (fun () -> e.Backend.trace_dispatches);
  Metrics.gauge m "traces_entered" (fun () -> e.Backend.traces_entered);
  Metrics.gauge m "traces_completed" (fun () -> e.Backend.traces_completed);
  Metrics.gauge m "completed_blocks" (fun () -> e.Backend.completed_blocks);
  Metrics.gauge m "partial_blocks" (fun () -> e.Backend.partial_blocks);
  Metrics.gauge m "completed_instrs" (fun () -> e.Backend.completed_instrs);
  Metrics.gauge m "partial_instrs" (fun () -> e.Backend.partial_instrs);
  Metrics.gauge m "traces_constructed" (fun () -> e.Backend.traces_constructed);
  Metrics.gauge m "builder_reuses" (fun () -> e.Backend.builder_reuses);
  Metrics.gauge m "chained_entries" (fun () -> e.Backend.chained_entries);
  Metrics.gauge m "guards_checked" (fun () -> e.Backend.guards_checked);
  Metrics.gauge m "guards_elided" (fun () -> e.Backend.guards_elided);
  Metrics.gauge m "guards_pruned" (fun () -> e.Backend.guards_pruned);
  Metrics.gauge m "signals" (fun () -> Profiler.signals e.Backend.profiler);
  Metrics.gauge m "ic_predictions" (fun () ->
      Profiler.predictions e.Backend.profiler);
  Metrics.gauge m "bcg_nodes" (fun () ->
      Bcg.n_nodes (Profiler.bcg e.Backend.profiler));
  Metrics.gauge m "bcg_edges" (fun () ->
      Bcg.n_edges (Profiler.bcg e.Backend.profiler));
  Metrics.gauge m "traces_live" (fun () -> Trace_cache.n_live e.Backend.cache);
  Metrics.gauge m "traces_replaced" (fun () ->
      Trace_cache.n_replaced e.Backend.cache);
  Metrics.gauge m "invariant_violations" (fun () ->
      e.Backend.invariant_violations);
  Metrics.gauge m "live_blocks" (fun () ->
      Trace_cache.live_blocks e.Backend.cache);
  Metrics.gauge m "traces_evicted" (fun () ->
      Trace_cache.n_evicted e.Backend.cache);
  Metrics.gauge m "traces_quarantined" (fun () ->
      Trace_cache.n_quarantines e.Backend.cache);
  Metrics.gauge m "quarantine_active" (fun () ->
      Trace_cache.n_quarantine_active e.Backend.cache);
  Metrics.gauge m "traces_blacklisted" (fun () ->
      Trace_cache.n_blacklisted e.Backend.cache);
  Metrics.gauge m "failed_installs" (fun () ->
      Trace_cache.n_failed_installs e.Backend.cache);
  Metrics.gauge m "faults_injected" (fun () -> Faults.injected e.Backend.faults);
  Metrics.gauge m "healed_nodes" (fun () -> e.Backend.healed_nodes);
  Metrics.gauge m "health_level" (fun () ->
      Health.level_rank (Health.level e.Backend.health));
  Metrics.gauge m "health_demotions" (fun () ->
      Health.demotions e.Backend.health);
  Metrics.gauge m "health_promotions" (fun () ->
      Health.promotions e.Backend.health);
  Metrics.gauge m "skipped_dispatches" (fun () ->
      Profiler.skipped e.Backend.profiler);
  Metrics.gauge m "backend_switches" (fun () -> t.backend_switches);
  Metrics.gauge m "cross_session_installs" (fun () ->
      Trace_cache.n_cross_installs e.Backend.cache);
  Metrics.gauge m "cross_session_entries" (fun () ->
      Trace_cache.n_cross_entries e.Backend.cache);
  Metrics.gauge m "traces_restored" (fun () ->
      Trace_cache.n_restored e.Backend.cache);
  Metrics.gauge m "snapshots_rejected" (fun () -> t.snapshots_rejected);
  Metrics.gauge m "cache_footprint_bytes" (fun () ->
      Trace_cache.footprint_bytes e.Backend.cache);
  Metrics.gauge m "pin_refusals" (fun () ->
      Trace_cache.n_pin_refusals e.Backend.cache);
  if Config.tier_enabled e.Backend.config then begin
    Metrics.gauge m "traces_compiled" (fun () -> e.Backend.traces_compiled);
    Metrics.gauge m "tier_demotions" (fun () -> e.Backend.tier_demotions);
    Metrics.gauge m "compiled_entries" (fun () -> e.Backend.compiled_entries);
    Metrics.gauge m "compiled_live" (fun () ->
        Trace_cache.n_compiled e.Backend.cache);
    Metrics.gauge m "demote_refusals" (fun () ->
        Trace_cache.n_demote_refusals e.Backend.cache);
    Metrics.gauge m "mi_ops" (fun () -> e.Backend.mi_ops);
    Metrics.gauge m "mi_src_instrs" (fun () -> e.Backend.mi_src_instrs)
  end;
  (match e.Backend.osr with
  | Some osr ->
      Metrics.gauge m "deopts" (fun () -> Osr.deopts osr);
      Metrics.gauge m "deopt_residue_blocks" (fun () ->
          Osr.residue_blocks osr);
      Metrics.gauge m "osr_promotions" (fun () -> Osr.promotions osr);
      Metrics.gauge m "osr_entries" (fun () -> Osr.entries osr)
  | None -> ());
  (match e.Backend.spans with
  | Some s ->
      Metrics.gauge m "spans_recorded" (fun () -> Spans.recorded s);
      Metrics.gauge m "spans_dropped" (fun () -> Spans.dropped s)
  | None -> ());
  (match e.Backend.flightrec with
  | Some fr ->
      Metrics.gauge m "flightrec_recorded" (fun () -> Flightrec.recorded fr);
      Metrics.gauge m "flightrec_dumps" (fun () -> Flightrec.dumps fr)
  | None -> ());
  match e.Backend.ledger with
  | Some l -> Metrics.gauge m "ledger_records" (fun () -> Ledger.length l)
  | None -> ()

let create ?(config = Config.default) ?(events = Events.create ()) ?cache
    ?backend (layout : Layout.t) : t =
  Config.validate config;
  let cache =
    match cache with
    | Some c ->
        if Trace_cache.layout c != layout then
          invalid_arg "Engine.create: cache built over a different layout";
        c
    | None ->
        Trace_cache.create ~events
          ~max_traces:(Config.max_cache_traces config)
          ~max_blocks:(Config.max_cache_blocks config)
          ~eviction_policy:(Config.eviction_policy config)
          ~heal_max_rebuilds:(Config.heal_max_rebuilds config)
          ~heal_backoff:(Config.heal_backoff config)
          layout
  in
  (* parse the fault schedule here (not in Config.validate) so Config
     stays below Faults in the dependency order; a malformed spec still
     fails fast, at engine creation *)
  let faults =
    Faults.create ~seed:(Config.fault_seed config) (Config.fault_spec config)
  in
  let health =
    Health.create
      ~demote_after:(Config.heal_demote_after config)
      ~recover_after:(Config.heal_recover_after config)
  in
  let metrics = Metrics.create ~period:(Config.snapshot_period config) () in
  let spans =
    if Config.obs_spans config then
      Some (Spans.create ~capacity:(Config.span_buffer config) ())
    else None
  in
  let buckets = Config.hist_buckets config in
  let h_trace_len = Metrics.histogram metrics ~buckets "executed_trace_len" in
  let h_exit_distance =
    Metrics.histogram metrics ~buckets "completion_distance"
  in
  let h_build_len = Metrics.histogram metrics ~buckets "builder_path_len" in
  let h_backoff = Metrics.histogram metrics ~buckets "quarantine_backoff" in
  let h_deopt_residue = Metrics.histogram metrics ~buckets "deopt_residue" in
  let osr =
    if Config.osr_enabled config then
      Some (Osr.create ~promote_after:(Config.osr_promote_after config) layout)
    else None
  in
  (* The black box and the decision ledger.  The recorder's intake taps
     the event stream out of band (it is not a subscriber: a run with an
     armed recorder still reports its stream quiet to user code) and
     rides the span close hook when spans are on. *)
  let flightrec =
    let cap = Config.flightrec_capacity config in
    if cap > 0 then Some (Flightrec.create ~capacity:cap) else None
  in
  let ledger =
    if Config.ledger_enabled config then Some (Ledger.create ()) else None
  in
  (match flightrec with
  | Some fr ->
      Events.set_tap events (Flightrec.record_event fr);
      (match spans with
      | Some s ->
          Spans.set_on_close s (fun (sp : Spans.span) ->
              Flightrec.record_span_closed fr ~time:sp.Spans.end_time
                ~id:sp.Spans.id ~parent:sp.Spans.parent
                ~kind:(Spans.kind_to_string sp.Spans.kind)
                ~label:sp.Spans.label ~start_time:sp.Spans.start_time)
      | None -> ())
  | None -> ());
  (* The profiler's signal callback closes over the shared dispatch
     context; tie the knot with a forward reference. *)
  let context = ref None in
  let on_signal signal =
    match !context with
    | None -> ()
    | Some (e : Backend.ctx) ->
        if Config.build_traces e.Backend.config then begin
          let build_span =
            match e.Backend.spans with
            | Some s ->
                let n = signal.Bcg.s_node in
                Spans.begin_span s ~kind:Spans.Trace_build
                  ~label:
                    (Printf.sprintf "build N_%d,%d" n.Bcg.n_x n.Bcg.n_y)
                  ~now:(Backend.clock e)
            | None -> -1
          in
          let outcome =
            Trace_builder.on_signal ~events
              ~on_path:(fun n -> Metrics.record e.Backend.h_build_len n)
              e.Backend.config e.Backend.cache signal
          in
          e.Backend.traces_constructed <-
            e.Backend.traces_constructed + outcome.Trace_builder.new_traces;
          e.Backend.builder_reuses <-
            e.Backend.builder_reuses + outcome.Trace_builder.reused_traces;
          e.Backend.guards_pruned <-
            e.Backend.guards_pruned + outcome.Trace_builder.pruned_guards;
          (* attribute the builder outcome (skip all-quiet signals: a
             signal that built, reused or pruned nothing decided
             nothing) *)
          if
            outcome.Trace_builder.new_traces > 0
            || outcome.Trace_builder.reused_traces > 0
            || outcome.Trace_builder.pruned_guards > 0
          then begin
            let n = signal.Bcg.s_node in
            let first = n.Bcg.n_x and head = n.Bcg.n_y in
            let trace_id =
              match Trace_cache.peek e.Backend.cache ~first ~head with
              | Some tr -> tr.Trace.id
              | None -> -1
            in
            Backend.ledger_record e ~trace_id ~first ~head
              (Ledger.Build
                 {
                   new_traces = outcome.Trace_builder.new_traces;
                   reused = outcome.Trace_builder.reused_traces;
                   pruned = outcome.Trace_builder.pruned_guards;
                 });
            if outcome.Trace_builder.pruned_guards > 0 then
              Backend.ledger_record e ~trace_id ~first ~head
                (Ledger.Guard_prune
                   { pruned = outcome.Trace_builder.pruned_guards })
          end;
          (* trace-construction boundary *)
          if Config.debug_checks e.Backend.config then
            Backend.run_debug_checks e;
          match e.Backend.spans with
          | Some s -> Spans.end_span s build_span ~now:(Backend.clock e)
          | None -> ()
        end
  in
  let profiler =
    Profiler.create ~events config ~n_blocks:layout.Layout.n_blocks ~on_signal
  in
  let ctx =
    {
      Backend.config;
      layout;
      profiler;
      cache;
      events;
      metrics;
      health;
      faults;
      osr;
      spans;
      flightrec;
      ledger;
      attr_self =
        (if Config.obs_attribution config then
           Array.make layout.Layout.n_blocks 0
         else [||]);
      attr_inlined =
        (if Config.obs_attribution config then
           Array.make layout.Layout.n_blocks 0
         else [||]);
      h_trace_len;
      h_exit_distance;
      h_build_len;
      h_backoff;
      h_deopt_residue;
      active = None;
      active_lowered = None;
      active_pos = 0;
      matched_blocks = 0;
      matched_instrs = 0;
      prev = -1;
      prev2 = -1;
      block_dispatches = 0;
      trace_dispatches = 0;
      traces_entered = 0;
      traces_completed = 0;
      completed_blocks = 0;
      partial_blocks = 0;
      completed_instrs = 0;
      partial_instrs = 0;
      traces_constructed = 0;
      builder_reuses = 0;
      chained_entries = 0;
      guards_checked = 0;
      guards_elided = 0;
      guards_pruned = 0;
      traces_compiled = 0;
      tier_demotions = 0;
      compiled_entries = 0;
      mi_positions = 0;
      mi_ops = 0;
      mi_fused = 0;
      mi_src_instrs = 0;
      just_completed = false;
      invariant_violations = 0;
      seen_decays = 0;
      healed_nodes = 0;
      in_debug_sweep = false;
    }
  in
  context := Some ctx;
  (* the ledger stamps each record with the dispatch tick and the
     innermost open span at record time *)
  (match ledger with
  | Some l ->
      Ledger.set_sources l
        ~tick:(fun () -> Backend.clock ctx)
        ~span:(fun () ->
          match ctx.Backend.spans with
          | Some s -> Spans.current s
          | None -> -1);
      Trace_cache.set_ledger cache l
  | None -> ());
  let kind, pinned =
    match backend with
    | Some k -> (k, true)
    | None -> (select config (Health.level health), false)
  in
  let t =
    {
      ctx;
      pinned;
      kind;
      kind_level = Health.level health;
      backend_switches = 0;
      snapshots_rejected = 0;
    }
  in
  register_gauges metrics t;
  let prev_values : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Metrics.on_snapshot metrics (fun snapshot ->
      if Events.enabled events then
        Events.emit events (Events.Phase_snapshot snapshot);
      (* the recorder keeps metric *deltas* between consecutive
         snapshots — what moved, not the whole registry *)
      match flightrec with
      | Some fr ->
          Array.iter
            (fun (name, value) ->
              let old =
                match Hashtbl.find_opt prev_values name with
                | Some v -> v
                | None -> 0
              in
              if value <> old then
                Flightrec.record_metric_delta fr ~time:snapshot.Metrics.at
                  ~name ~delta:(value - old) ~total:value;
              Hashtbl.replace prev_values name value)
            snapshot.Metrics.values
      | None -> ());
  t

(* accessors over the abstract engine *)
let config t = t.ctx.Backend.config

let layout t = t.ctx.Backend.layout

let profiler t = t.ctx.Backend.profiler

let cache t = t.ctx.Backend.cache

let events t = t.ctx.Backend.events

let metrics t = t.ctx.Backend.metrics

let active_trace t = t.ctx.Backend.active

let block_dispatches t = t.ctx.Backend.block_dispatches

let trace_dispatches t = t.ctx.Backend.trace_dispatches

let total_dispatches t =
  t.ctx.Backend.block_dispatches + t.ctx.Backend.trace_dispatches

let traces_entered t = t.ctx.Backend.traces_entered

let traces_completed t = t.ctx.Backend.traces_completed

let completed_blocks t = t.ctx.Backend.completed_blocks

let partial_blocks t = t.ctx.Backend.partial_blocks

let completed_instrs t = t.ctx.Backend.completed_instrs

let partial_instrs t = t.ctx.Backend.partial_instrs

let traces_constructed t = t.ctx.Backend.traces_constructed

let builder_reuses t = t.ctx.Backend.builder_reuses

let chained_entries t = t.ctx.Backend.chained_entries

let guards_checked t = t.ctx.Backend.guards_checked

let guards_elided t = t.ctx.Backend.guards_elided

let guards_pruned t = t.ctx.Backend.guards_pruned

let invariant_violations t = t.ctx.Backend.invariant_violations

let health t = t.ctx.Backend.health

let health_level t = Health.level t.ctx.Backend.health

let faults_injected t = Faults.injected t.ctx.Backend.faults

let healed_nodes t = t.ctx.Backend.healed_nodes

let spans t = t.ctx.Backend.spans

let flightrec t = t.ctx.Backend.flightrec

let ledger t = t.ctx.Backend.ledger

let attr_self t = t.ctx.Backend.attr_self

let attr_inlined t = t.ctx.Backend.attr_inlined

let inflight_matched_blocks t =
  match t.ctx.Backend.active with
  | Some _ -> t.ctx.Backend.matched_blocks
  | None -> 0

let trace_len_hist t = t.ctx.Backend.h_trace_len

let exit_distance_hist t = t.ctx.Backend.h_exit_distance

let build_len_hist t = t.ctx.Backend.h_build_len

let backoff_hist t = t.ctx.Backend.h_backoff

let deopt_residue_hist t = t.ctx.Backend.h_deopt_residue

(* OSR accounting; all zero when Config.Osr is off. *)
let deopts t =
  match t.ctx.Backend.osr with Some o -> Osr.deopts o | None -> 0

let deopt_residue_blocks t =
  match t.ctx.Backend.osr with Some o -> Osr.residue_blocks o | None -> 0

let osr_promotions t =
  match t.ctx.Backend.osr with Some o -> Osr.promotions o | None -> 0

let osr_entries t =
  match t.ctx.Backend.osr with Some o -> Osr.entries o | None -> 0

let osr_state_checks t =
  match t.ctx.Backend.osr with Some o -> Osr.state_checks o | None -> 0

let osr_state_mismatches t =
  match t.ctx.Backend.osr with Some o -> Osr.state_mismatches o | None -> 0

let pin_refusals t = Trace_cache.n_pin_refusals t.ctx.Backend.cache

(* compiled-tier accounting; all zero when Config.Tier is off *)
let traces_compiled t = t.ctx.Backend.traces_compiled

let tier_demotions t = t.ctx.Backend.tier_demotions

let compiled_entries t = t.ctx.Backend.compiled_entries

let mi_positions t = t.ctx.Backend.mi_positions

let mi_ops t = t.ctx.Backend.mi_ops

let mi_fused t = t.ctx.Backend.mi_fused

let mi_src_instrs t = t.ctx.Backend.mi_src_instrs

let demote_refusals t = Trace_cache.n_demote_refusals t.ctx.Backend.cache

let arm_guard_flip t ~pos = Faults.arm_flip t.ctx.Backend.faults ~pos

let debug_sweep t = Backend.run_debug_checks t.ctx

let attach t (handle : Interp.handle) =
  match t.ctx.Backend.osr with
  | Some osr ->
      Osr.set_materialize osr (fun () -> Some (Interp.materialize handle))
  | None -> ()

let backend_kind t = t.kind

let backend t = implementation t.kind

let backend_name t = backend_kind_name t.kind

let backend_pinned t = t.pinned

let backend_switches t = t.backend_switches

(* The VM observer: re-select the backend if the ladder moved since the
   last dispatch (a mid-dispatch transition therefore takes effect at
   the next observed block, exactly like the old mode flags), then hand
   the block to the current strategy. *)
let on_block t (g : Layout.gid) =
  let ctx = t.ctx in
  if not t.pinned then begin
    let level = Health.level ctx.Backend.health in
    if level <> t.kind_level then begin
      t.kind_level <- level;
      let k = select ctx.Backend.config level in
      if k <> t.kind then begin
        t.kind <- k;
        t.backend_switches <- t.backend_switches + 1
      end
    end
  end;
  match t.kind with
  | Interp -> Backend_interp.on_block ctx g
  | Profile -> Backend_profile.on_block ctx g
  | Trace -> Backend_trace.on_block ctx g
  | Microir -> Backend_microir.on_block ctx g

(* Assemble final statistics: the engine fills the VM / resilience
   fields, then every strategy overlays the counters it maintains.  All
   three always contribute — counters are cumulative over the run,
   whichever backend was active when they advanced. *)
let stats t ~(vm_result : Interp.result) ~wall_seconds : Stats.t =
  let ctx = t.ctx in
  let base =
    {
      Stats.zero with
      Stats.instructions = vm_result.Interp.instructions;
      invariant_violations = ctx.Backend.invariant_violations;
      faults_injected = Faults.injected ctx.Backend.faults;
      traces_quarantined = Trace_cache.n_quarantines ctx.Backend.cache;
      traces_evicted = Trace_cache.n_evicted ctx.Backend.cache;
      traces_blacklisted = Trace_cache.n_blacklisted ctx.Backend.cache;
      failed_installs = Trace_cache.n_failed_installs ctx.Backend.cache;
      healed_nodes = ctx.Backend.healed_nodes;
      health_demotions = Health.demotions ctx.Backend.health;
      health_promotions = Health.promotions ctx.Backend.health;
      final_health = Health.level_rank (Health.level ctx.Backend.health);
      wall_seconds;
    }
  in
  List.fold_left
    (fun s k ->
      let (module B : Backend.S) = implementation k in
      B.stats_into ctx s)
    base backends

(* Warm starts: the engine-level snapshot is the Persist encoding of
   the profiler's BCG plus the live trace cache, and restoring is the
   only place the Cache_restored / Snapshot_rejected events are
   emitted, so every load attempt is visible on the timeline. *)

let snapshot t =
  let ctx = t.ctx in
  Persist.encode ~layout:ctx.Backend.layout
    {
      Persist.bcg_nodes = Bcg.snapshot (Profiler.bcg ctx.Backend.profiler);
      cache_entries = Trace_cache.snapshot ctx.Backend.cache;
    }

type restore_info = {
  restored_traces : int;
  restored_blocks : int;
  restored_bcg_nodes : int;
  restored_bcg_edges : int;
  recompiled_traces : int;
}

let snapshots_rejected t = t.snapshots_rejected

let restore t data : (restore_info, Persist.error) result =
  let ctx = t.ctx in
  match Persist.decode ~layout:ctx.Backend.layout data with
  | Error e ->
      t.snapshots_rejected <- t.snapshots_rejected + 1;
      if Events.enabled ctx.Backend.events then
        Events.emit ctx.Backend.events
          (Events.Snapshot_rejected { reason = Persist.error_to_string e });
      Backend.fr_trigger ctx Flightrec.Snapshot_rejected;
      Error e
  | Ok snap ->
      let bcg = Profiler.bcg ctx.Backend.profiler in
      Bcg.restore bcg snap.Persist.bcg_nodes;
      let traces =
        Trace_cache.restore
          ~promoted_below:(Config.threshold t.ctx.Backend.config)
          ctx.Backend.cache snap.Persist.cache_entries
      in
      (* the compiled tier is derived state: snapshots persist heat, not
         lowered bodies, so re-derive the compiled set from the restored
         use counts (Tier.recompile_restored is a no-op with the tier
         off) *)
      let recompiled =
        Tier.recompile_restored ctx.Backend.config ctx.Backend.layout
          ctx.Backend.cache ~events:ctx.Backend.events
      in
      ctx.Backend.traces_compiled <- ctx.Backend.traces_compiled + recompiled;
      let info =
        {
          restored_traces = traces;
          restored_blocks = Trace_cache.live_blocks ctx.Backend.cache;
          restored_bcg_nodes = Bcg.n_nodes bcg;
          restored_bcg_edges = Bcg.n_edges bcg;
          recompiled_traces = recompiled;
        }
      in
      if Events.enabled ctx.Backend.events then
        Events.emit ctx.Backend.events
          (Events.Cache_restored
             {
               traces;
               cache_blocks = info.restored_blocks;
               bcg_nodes = info.restored_bcg_nodes;
               bcg_edges = info.restored_bcg_edges;
             });
      Ok info

type run_result = {
  engine : t;
  vm_result : Interp.result;
  run_stats : Stats.t;
}

(* Drive an already-created engine over its program — the warm-start
   flow creates, restores, then drives. *)
let drive ?max_instructions t : run_result =
  let layout = t.ctx.Backend.layout in
  let t0 = Unix.gettimeofday () in
  (* drive through a handle (not Interp.run) so the OSR deopt checks can
     materialize the live continuation; bit-identical either way *)
  let handle =
    Interp.start ?max_instructions layout ~on_block:(fun g -> on_block t g)
  in
  attach t handle;
  let vm_result = Interp.finish handle in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  { engine = t; vm_result; run_stats = stats t ~vm_result ~wall_seconds }

(* Run a program under the full system. *)
let run ?(config = Config.default) ?events ?max_instructions ?backend
    (layout : Layout.t) : run_result =
  drive ?max_instructions (create ~config ?events ?backend layout)
