module Layout = Cfg.Layout
module Interp = Vm.Interp

(* The complete system: the VM's block-dispatch stream drives the profiler;
   profiler signals drive trace reconstruction; and the trace cache overlays
   trace dispatch onto the stream.

   Dispatch accounting mirrors the modified SableVM:

   - a block dispatched outside any trace executes the profiler hook and
     counts as one block dispatch;
   - a dispatch that enters a trace executes the hook once and counts as
     one *trace* dispatch; the blocks the trace then executes internally
     are inlined — no dispatch, no hook;
   - when execution diverges from the trace (side exit) or the trace
     completes, the profiler context is resynchronized to the last two
     executed blocks and normal dispatching resumes.

   Observability: every lifecycle moment is published on a typed event
   stream and the accounting is exposed through a metrics registry
   (polled gauges — zero hot-path cost).  The type is abstract; consumers
   observe the engine through accessors, events, metrics and Stats.

   Self-healing (Config.self_heal): every trace dispatch is validated
   against the TL2xx invariants first; a condemned trace is quarantined
   (removed and blacklisted with exponential backoff), flagged BCG nodes
   are healed in place, and repeated detections walk the Health
   degradation ladder down (full tracing -> profiling-only -> pure
   interpretation) while sustained clean dispatches climb it back up.
   The Faults injector drives all of this deterministically for chaos
   testing; because tracing is a pure overlay, the VM's results are
   bit-identical under any fault schedule. *)

type t = {
  config : Config.t;
  layout : Layout.t;
  profiler : Profiler.t;
  cache : Trace_cache.t;
  events : Events.t;
  metrics : Metrics.t;
  health : Health.t;
  faults : Faults.t;
  (* trace execution state *)
  mutable active : Trace.t option;
  mutable active_pos : int; (* index of the next expected block *)
  mutable matched_blocks : int;
  mutable matched_instrs : int;
  (* last two blocks actually executed, traces included *)
  mutable prev : Layout.gid;
  mutable prev2 : Layout.gid;
  (* accounting *)
  mutable block_dispatches : int;
  mutable trace_dispatches : int;
  mutable traces_entered : int;
  mutable traces_completed : int;
  mutable completed_blocks : int;
  mutable partial_blocks : int;
  mutable completed_instrs : int;
  mutable partial_instrs : int;
  mutable traces_constructed : int;
  mutable builder_reuses : int;
  mutable chained_entries : int;
    (* trace entries whose previous dispatch completed another trace:
       the dispatch-level view of Dynamo-style trace linking *)
  mutable just_completed : bool;
  (* debug_checks bookkeeping *)
  mutable invariant_violations : int;
  mutable seen_decays : int; (* decay boundary detector, like Profiler's *)
  (* self-heal bookkeeping *)
  mutable healed_nodes : int; (* BCG nodes repaired in place *)
  mutable in_debug_sweep : bool;
    (* re-entrancy guard: healing a node rechecks it, which can signal
       the builder, whose construction boundary would sweep again *)
}

(* Walk the health ladder: publish the transition and, when climbing out
   of interp-only, drop the profiler's stale branch context (the skipped
   dispatches never updated it). *)
let apply_health t (transition : Health.transition) =
  match transition with
  | Health.Stay -> ()
  | Health.Changed (from_level, to_level) ->
      if Events.enabled t.events then
        if Health.level_rank to_level > Health.level_rank from_level then
          Events.emit t.events (Events.Mode_degraded { from_level; to_level })
        else
          Events.emit t.events (Events.Mode_recovered { from_level; to_level });
      if from_level = Health.Interp_only then Profiler.reset t.profiler

(* Run the invariant sweep (Config.debug_checks): count every finding and
   publish it on the stream.  Called at trace-construction and decay
   boundaries, never on the plain dispatch path.

   Under Config.self_heal the sweep also repairs what it found: flagged
   BCG nodes are healed in place (losing corrupted history, keeping the
   node profiling), flagged traces are quarantined, and the whole sweep
   counts as one strike against the health ladder. *)
let run_debug_checks t =
  if t.in_debug_sweep then ()
  else begin
    t.in_debug_sweep <- true;
    let bcg = Profiler.bcg t.profiler in
    let diags =
      Invariants.check_all ~layout:t.layout t.config ~bcg ~cache:t.cache
    in
    List.iter
      (fun (d : Analysis.Diag.t) ->
        t.invariant_violations <- t.invariant_violations + 1;
        if Events.enabled t.events then
          Events.emit t.events
            (Events.Invariant_violation
               {
                 code = d.Analysis.Diag.code;
                 severity =
                   Analysis.Diag.severity_to_string d.Analysis.Diag.severity;
                 message = Analysis.Diag.to_string d;
               }))
      diags;
    if t.config.Config.self_heal && diags <> [] then begin
      let healed = Hashtbl.create 8 in
      let condemned = Hashtbl.create 8 in
      List.iter
        (fun (d : Analysis.Diag.t) ->
          match d.Analysis.Diag.loc with
          | Analysis.Diag.Node_loc { x; y } ->
              if not (Hashtbl.mem healed (x, y)) then begin
                Hashtbl.replace healed (x, y) ();
                match Bcg.find_node bcg ~x ~y with
                | Some n ->
                    if Bcg.heal_node bcg n then
                      t.healed_nodes <- t.healed_nodes + 1
                | None -> ()
              end
          | Analysis.Diag.Trace_loc { trace_id } ->
              if not (Hashtbl.mem condemned trace_id) then begin
                Hashtbl.replace condemned trace_id ();
                (* quarantine by the trace's live entry binding *)
                let entry = ref None in
                Trace_cache.iter_entries t.cache (fun ~first ~head tr ->
                    if tr.Trace.id = trace_id then entry := Some (first, head));
                match !entry with
                | Some (first, head) ->
                    ignore
                      (Trace_cache.quarantine t.cache ~first ~head
                         ~code:d.Analysis.Diag.code)
                | None -> ()
              end
          | Analysis.Diag.Method_loc _ | Analysis.Diag.Program_loc -> ())
        diags;
      apply_health t (Health.strike t.health)
    end;
    t.in_debug_sweep <- false
  end

(* Expose the accounting through the registry as polled gauges: nothing
   on the dispatch path, evaluated only when a snapshot is taken. *)
let register_gauges (m : Metrics.t) (e : t) =
  Metrics.gauge m "block_dispatches" (fun () -> e.block_dispatches);
  Metrics.gauge m "trace_dispatches" (fun () -> e.trace_dispatches);
  Metrics.gauge m "traces_entered" (fun () -> e.traces_entered);
  Metrics.gauge m "traces_completed" (fun () -> e.traces_completed);
  Metrics.gauge m "completed_blocks" (fun () -> e.completed_blocks);
  Metrics.gauge m "partial_blocks" (fun () -> e.partial_blocks);
  Metrics.gauge m "completed_instrs" (fun () -> e.completed_instrs);
  Metrics.gauge m "partial_instrs" (fun () -> e.partial_instrs);
  Metrics.gauge m "traces_constructed" (fun () -> e.traces_constructed);
  Metrics.gauge m "builder_reuses" (fun () -> e.builder_reuses);
  Metrics.gauge m "chained_entries" (fun () -> e.chained_entries);
  Metrics.gauge m "signals" (fun () -> Profiler.signals e.profiler);
  Metrics.gauge m "ic_predictions" (fun () -> Profiler.predictions e.profiler);
  Metrics.gauge m "bcg_nodes" (fun () -> Bcg.n_nodes (Profiler.bcg e.profiler));
  Metrics.gauge m "bcg_edges" (fun () -> Bcg.n_edges (Profiler.bcg e.profiler));
  Metrics.gauge m "traces_live" (fun () -> Trace_cache.n_live e.cache);
  Metrics.gauge m "traces_replaced" (fun () -> Trace_cache.n_replaced e.cache);
  Metrics.gauge m "invariant_violations" (fun () -> e.invariant_violations);
  Metrics.gauge m "live_blocks" (fun () -> Trace_cache.live_blocks e.cache);
  Metrics.gauge m "traces_evicted" (fun () -> Trace_cache.n_evicted e.cache);
  Metrics.gauge m "traces_quarantined" (fun () ->
      Trace_cache.n_quarantines e.cache);
  Metrics.gauge m "quarantine_active" (fun () ->
      Trace_cache.n_quarantine_active e.cache);
  Metrics.gauge m "traces_blacklisted" (fun () ->
      Trace_cache.n_blacklisted e.cache);
  Metrics.gauge m "failed_installs" (fun () ->
      Trace_cache.n_failed_installs e.cache);
  Metrics.gauge m "faults_injected" (fun () -> Faults.injected e.faults);
  Metrics.gauge m "healed_nodes" (fun () -> e.healed_nodes);
  Metrics.gauge m "health_level" (fun () ->
      Health.level_rank (Health.level e.health));
  Metrics.gauge m "health_demotions" (fun () -> Health.demotions e.health);
  Metrics.gauge m "health_promotions" (fun () -> Health.promotions e.health);
  Metrics.gauge m "skipped_dispatches" (fun () -> Profiler.skipped e.profiler)

let create ?(config = Config.default) ?(events = Events.create ())
    (layout : Layout.t) : t =
  Config.validate config;
  let cache =
    Trace_cache.create ~events ~max_traces:config.Config.max_cache_traces
      ~max_blocks:config.Config.max_cache_blocks
      ~heal_max_rebuilds:config.Config.heal_max_rebuilds
      ~heal_backoff:config.Config.heal_backoff layout
  in
  (* parse the fault schedule here (not in Config.validate) so Config
     stays below Faults in the dependency order; a malformed spec still
     fails fast, at engine creation *)
  let faults =
    Faults.create ~seed:config.Config.fault_seed config.Config.fault_spec
  in
  let health =
    Health.create ~demote_after:config.Config.heal_demote_after
      ~recover_after:config.Config.heal_recover_after
  in
  let metrics = Metrics.create ~period:config.Config.snapshot_period () in
  (* The profiler's signal callback closes over the engine; tie the knot
     with a forward reference. *)
  let engine = ref None in
  let on_signal signal =
    match !engine with
    | None -> ()
    | Some e ->
        if e.config.Config.build_traces then begin
          let outcome =
            Trace_builder.on_signal ~events e.config e.cache signal
          in
          e.traces_constructed <-
            e.traces_constructed + outcome.Trace_builder.new_traces;
          e.builder_reuses <-
            e.builder_reuses + outcome.Trace_builder.reused_traces;
          (* trace-construction boundary *)
          if e.config.Config.debug_checks then run_debug_checks e
        end
  in
  let profiler =
    Profiler.create ~events config ~n_blocks:layout.Layout.n_blocks ~on_signal
  in
  let e =
    {
      config;
      layout;
      profiler;
      cache;
      events;
      metrics;
      health;
      faults;
      active = None;
      active_pos = 0;
      matched_blocks = 0;
      matched_instrs = 0;
      prev = -1;
      prev2 = -1;
      block_dispatches = 0;
      trace_dispatches = 0;
      traces_entered = 0;
      traces_completed = 0;
      completed_blocks = 0;
      partial_blocks = 0;
      completed_instrs = 0;
      partial_instrs = 0;
      traces_constructed = 0;
      builder_reuses = 0;
      chained_entries = 0;
      just_completed = false;
      invariant_violations = 0;
      seen_decays = 0;
      healed_nodes = 0;
      in_debug_sweep = false;
    }
  in
  engine := Some e;
  register_gauges metrics e;
  Metrics.on_snapshot metrics (fun snapshot ->
      if Events.enabled events then
        Events.emit events (Events.Phase_snapshot snapshot));
  e

(* accessors over the abstract engine *)
let config t = t.config

let layout t = t.layout

let profiler t = t.profiler

let cache t = t.cache

let events t = t.events

let metrics t = t.metrics

let active_trace t = t.active

let block_dispatches t = t.block_dispatches

let trace_dispatches t = t.trace_dispatches

let total_dispatches t = t.block_dispatches + t.trace_dispatches

let traces_entered t = t.traces_entered

let traces_completed t = t.traces_completed

let completed_blocks t = t.completed_blocks

let partial_blocks t = t.partial_blocks

let completed_instrs t = t.completed_instrs

let partial_instrs t = t.partial_instrs

let traces_constructed t = t.traces_constructed

let builder_reuses t = t.builder_reuses

let chained_entries t = t.chained_entries

let invariant_violations t = t.invariant_violations

let health t = t.health

let health_level t = Health.level t.health

let faults_injected t = Faults.injected t.faults

let healed_nodes t = t.healed_nodes

let note_executed t g =
  t.prev2 <- t.prev;
  t.prev <- g

(* End the active trace after a completion. *)
let finish_completed t (tr : Trace.t) =
  t.just_completed <- true;
  tr.Trace.completed <- tr.Trace.completed + 1;
  t.traces_completed <- t.traces_completed + 1;
  t.completed_blocks <- t.completed_blocks + Trace.n_blocks tr;
  t.completed_instrs <- t.completed_instrs + tr.Trace.total_instrs;
  t.active <- None;
  if Events.enabled t.events then
    Events.emit t.events
      (Events.Trace_completed
         {
           trace_id = tr.Trace.id;
           n_blocks = Trace.n_blocks tr;
           n_instrs = tr.Trace.total_instrs;
         });
  (* the profiler missed the trace interior: reposition its context at the
     trace's final branch *)
  Profiler.resync t.profiler ~x:t.prev2 ~y:t.prev

(* End the active trace after a side exit; the mismatching block has not
   been processed yet. *)
let finish_partial t (tr : Trace.t) =
  t.just_completed <- false;
  tr.Trace.partial_exits <- tr.Trace.partial_exits + 1;
  tr.Trace.partial_instrs <- tr.Trace.partial_instrs + t.matched_instrs;
  t.partial_blocks <- t.partial_blocks + t.matched_blocks;
  t.partial_instrs <- t.partial_instrs + t.matched_instrs;
  t.active <- None;
  if Events.enabled t.events then
    Events.emit t.events
      (Events.Side_exit
         {
           trace_id = tr.Trace.id;
           at_block = t.active_pos;
           matched_blocks = t.matched_blocks;
           matched_instrs = t.matched_instrs;
         });
  Profiler.resync t.profiler ~x:t.prev2 ~y:t.prev

(* Validate a trace the dispatch lookup produced, before entering it.
   Returns the code of the first violated invariant, or None when the
   trace is sound.  The binding key is checked first (a corrupted head
   block desynchronizes it), then the full TL2xx battery over the trace
   body — the cost self-healing pays per trace dispatch. *)
let validate_dispatch t (tr : Trace.t) ~prev ~cur : string option =
  let f, h = Trace.entry_key tr in
  if f <> prev || h <> cur then Some "TL202"
  else
    match
      Invariants.check_trace
        ~bcg:(Profiler.bcg t.profiler)
        ~layout:t.layout t.config tr
    with
    | [] -> None
    | d :: _ -> Some d.Analysis.Diag.code

(* Process one dispatched block outside any trace: either it enters a
   trace (trace dispatch) or it is an ordinary block dispatch. *)
let dispatch_outside t g =
  Metrics.tick t.metrics;
  let self_heal = t.config.Config.self_heal in
  if self_heal || Faults.is_active t.faults then begin
    let now = t.block_dispatches + t.trace_dispatches in
    Trace_cache.set_clock t.cache now;
    (* injected faults land just before the dispatch decision *)
    List.iter
      (fun (code, detail) ->
        if Events.enabled t.events then
          Events.emit t.events (Events.Fault_injected { code; detail }))
      (Faults.tick t.faults ~now
         ~bcg:(Profiler.bcg t.profiler)
         ~cache:t.cache ~active:t.active)
  end;
  let level = Health.level t.health in
  if level = Health.Interp_only then begin
    (* last resort: pure interpretation, not even the profiler hook *)
    t.block_dispatches <- t.block_dispatches + 1;
    t.just_completed <- false;
    Profiler.note_skipped t.profiler;
    note_executed t g;
    apply_health t (Health.clean_dispatch t.health)
  end
  else begin
    let candidate =
      if t.config.Config.build_traces && level = Health.Full_tracing then
        Trace_cache.lookup t.cache ~prev:t.prev ~cur:g
      else None
    in
    let candidate, detected =
      match candidate with
      | Some tr when self_heal -> (
          match validate_dispatch t tr ~prev:t.prev ~cur:g with
          | None -> (Some tr, false)
          | Some code ->
              (* condemned at dispatch: quarantine the entry and strike
                 the ladder, then dispatch the block normally *)
              ignore (Trace_cache.quarantine t.cache ~first:t.prev ~head:g ~code);
              apply_health t (Health.strike t.health);
              (None, true))
      | c -> (c, false)
    in
    (match candidate with
    | Some tr ->
        t.trace_dispatches <- t.trace_dispatches + 1;
        t.traces_entered <- t.traces_entered + 1;
        let chained = t.just_completed in
        if chained then t.chained_entries <- t.chained_entries + 1;
        t.just_completed <- false;
        tr.Trace.entered <- tr.Trace.entered + 1;
        if Events.enabled t.events then
          Events.emit t.events
            (Events.Trace_entered { trace_id = tr.Trace.id; chained });
        (* the single profiling statement of a trace dispatch *)
        Profiler.dispatch t.profiler g;
        note_executed t g;
        t.matched_blocks <- 1;
        t.matched_instrs <- tr.Trace.instr_len.(0);
        if Trace.n_blocks tr = 1 then begin
          (* degenerate single-block trace: completes immediately *)
          t.active <- None;
          finish_completed t tr
        end
        else begin
          t.active <- Some tr;
          t.active_pos <- 1
        end
    | None ->
        t.block_dispatches <- t.block_dispatches + 1;
        t.just_completed <- false;
        Profiler.dispatch t.profiler g;
        note_executed t g);
    if self_heal && not detected then
      apply_health t (Health.clean_dispatch t.health)
  end

(* The VM observer: called at every basic-block dispatch. *)
let rec on_block_inner t (g : Layout.gid) =
  match t.active with
  | None -> dispatch_outside t g
  | Some tr ->
      let expected = tr.Trace.blocks.(t.active_pos) in
      if g = expected then begin
        note_executed t g;
        t.matched_blocks <- t.matched_blocks + 1;
        t.matched_instrs <- t.matched_instrs + tr.Trace.instr_len.(t.active_pos);
        if t.active_pos = Trace.n_blocks tr - 1 then finish_completed t tr
        else t.active_pos <- t.active_pos + 1
      end
      else begin
        (* side exit: leave the trace, then process g normally (it may
           itself enter another trace) *)
        finish_partial t tr;
        on_block_inner t g
      end

let on_block t (g : Layout.gid) =
  (* stamp the stream once per observed block; events emitted during this
     step carry the current dispatch index *)
  if Events.enabled t.events then
    Events.set_now t.events (t.block_dispatches + t.trace_dispatches);
  on_block_inner t g;
  if t.config.Config.debug_checks then begin
    (* decay boundary: the BCG ran one or more decay passes during this
       dispatch *)
    let d = (Profiler.bcg t.profiler).Bcg.decays in
    if d <> t.seen_decays then begin
      t.seen_decays <- d;
      run_debug_checks t
    end
  end

(* Assemble final statistics. *)
let stats t ~(vm_result : Interp.result) ~wall_seconds : Stats.t =
  let bcg = Profiler.bcg t.profiler in
  let static_traces = ref 0 in
  let static_blocks = ref 0 in
  Trace_cache.iter_all t.cache (fun tr ->
      if tr.Trace.completed > 0 then begin
        incr static_traces;
        static_blocks := !static_blocks + Trace.n_blocks tr
      end);
  {
    Stats.instructions = vm_result.Interp.instructions;
    block_dispatches = t.block_dispatches;
    trace_dispatches = t.trace_dispatches;
    traces_entered = t.traces_entered;
    traces_completed = t.traces_completed;
    completed_blocks = t.completed_blocks;
    partial_blocks = t.partial_blocks;
    completed_instrs = t.completed_instrs;
    partial_instrs = t.partial_instrs;
    signals = Profiler.signals t.profiler;
    traces_constructed = t.traces_constructed;
    traces_replaced = Trace_cache.n_replaced t.cache;
    traces_live = Trace_cache.n_live t.cache;
    static_traces = !static_traces;
    static_blocks = !static_blocks;
    bcg_nodes = Bcg.n_nodes bcg;
    bcg_edges = Bcg.n_edges bcg;
    ic_predictions = Profiler.predictions t.profiler;
    chained_entries = t.chained_entries;
    invariant_violations = t.invariant_violations;
    faults_injected = Faults.injected t.faults;
    traces_quarantined = Trace_cache.n_quarantines t.cache;
    traces_evicted = Trace_cache.n_evicted t.cache;
    traces_blacklisted = Trace_cache.n_blacklisted t.cache;
    failed_installs = Trace_cache.n_failed_installs t.cache;
    healed_nodes = t.healed_nodes;
    health_demotions = Health.demotions t.health;
    health_promotions = Health.promotions t.health;
    final_health = Health.level_rank (Health.level t.health);
    wall_seconds;
  }

type run_result = {
  engine : t;
  vm_result : Interp.result;
  run_stats : Stats.t;
}

(* Run a program under the full system. *)
let run ?(config = Config.default) ?events ?max_instructions
    (layout : Layout.t) : run_result =
  let engine = create ~config ?events layout in
  let t0 = Unix.gettimeofday () in
  let vm_result =
    Interp.run ?max_instructions layout ~on_block:(fun g -> on_block engine g)
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  { engine; vm_result; run_stats = stats engine ~vm_result ~wall_seconds }
