(** The profiling mechanism (paper §4.1.2).

    The interpreter's hook into the profiler is the {e branch context}:
    the BCG node for the last branch taken, whose cached best successor
    acts as an inline cache.  One {!dispatch} call is the profiling
    statement a direct-threaded-inlining interpreter appends to every
    block's dispatch code; a trace dispatch executes it exactly once. *)

type t

val create :
  ?events:Events.t ->
  Config.t ->
  n_blocks:int ->
  on_signal:(Bcg.signal -> unit) ->
  t
(** [events] receives [Signal_raised] (published before [on_signal]
    reacts, so the timeline shows cause before effect) and [Decay_pass]
    events; a fresh disabled stream is used when omitted. *)

val events : t -> Events.t

val dispatch : t -> Cfg.Layout.gid -> unit
(** One profiled dispatch of a block: updates the branch context's node
    and correlation edge, counts inline-cache predictions, and advances
    decay. *)

val resync : t -> x:Cfg.Layout.gid -> y:Cfg.Layout.gid -> unit
(** Re-establish the branch context after unprofiled (in-trace)
    execution: the last two dispatched blocks were [x] then [y].  The
    context node is looked up but not counted — the trace's interior ran
    without hooks. *)

val reset : t -> unit
(** Forget the context entirely (start of an independent stream). *)

val bcg : t -> Bcg.t

val dispatches : t -> int
(** Profiled dispatches, i.e. hook executions. *)

val signals : t -> int

val predictions : t -> int
(** Inline-cache hits: dispatches whose block was the context's cached
    best successor.  Used by the overhead model — a predicted dispatch is
    the paper's two-comparison fast path. *)

val note_skipped : t -> unit
(** Record one unprofiled dispatch: the engine's health ladder is at
    interp-only and bypassed the hook.  The branch context is stale
    afterwards; the engine must {!reset} before profiling resumes. *)

val skipped : t -> int
(** Dispatches bypassed while degraded to pure interpretation. *)
