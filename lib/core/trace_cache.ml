module Layout = Cfg.Layout

(* The trace cache (paper §4.2): a hash table of traces, indexed two ways —
   by entry transition for dispatch, and by full block sequence for
   hash-consing (an identical reconstructed trace is retrieved and relinked
   rather than rebuilt).  Replacing the trace installed at an entry key
   counts as an instability event.

   On top of the paper's design the cache is bounded and self-healing:

   - capacity caps ([max_traces] / [max_blocks], 0 = unbounded) evict a
     victim under pressure instead of growing without bound — the least
     recently dispatched entry under the default Lru policy, or the entry
     with the worst estimated-bytes-per-use ratio under Footprint_aware
     (paper §3.3: the cache should hold as little rarely executed code as
     possible, and a large cold trace wastes more i-cache than a small
     one);
   - a quarantine table blacklists entry transitions whose trace was
     condemned (by a TL2xx check or an injected fault), with exponential
     backoff in cache-clock units and permanent blacklisting after
     [heal_max_rebuilds] condemnations;
   - [try_install] is the fallible front door the trace builder uses: it
     refuses quarantined entries and consumes injected installation
     failures, so the builder degrades gracefully instead of reinstalling
     a known-bad trace. *)

type qentry = {
  mutable attempts : int; (* condemnations of this entry so far *)
  mutable until : int; (* cache clock before a rebuild may be attempted *)
}

type t = {
  layout : Layout.t;
  events : Events.t;
  by_entry : (int, Trace.t) Hashtbl.t; (* key = first * n_blocks + head *)
  by_seq : (string, Trace.t) Hashtbl.t; (* structural key *)
  max_traces : int; (* live-trace cap; 0 = unbounded *)
  max_blocks : int; (* live-block cap; 0 = unbounded *)
  policy : Config.Cache.eviction_policy; (* victim selection under pressure *)
  heal_max_rebuilds : int;
  heal_backoff : int;
  quarantine : (int, qentry) Hashtbl.t; (* entry key -> blacklist record *)
  pinned : (int, int) Hashtbl.t;
      (* trace id -> execution refcount.  A pinned trace is currently
         being followed by some engine (refcounted because the Session
         layer shares one cache between members) and must never be
         condemned: eviction skips it and quarantine refuses it. *)
  last_used : (int, int) Hashtbl.t; (* entry key -> use stamp *)
  use_count : (int, int) Hashtbl.t; (* entry key -> uses (heat) *)
  mutable stamp : int; (* monotone use counter for LRU *)
  mutable clock : int; (* engine dispatch count, drives backoff *)
  mutable session : int; (* id of the session currently dispatching; 0 solo *)
  mutable live_blocks : int; (* sum of block counts over by_entry *)
  mutable next_id : int;
  mutable constructed : int; (* traces newly built *)
  mutable restored : int; (* traces rebound from a warm-start snapshot *)
  mutable replaced : int; (* entry keys whose trace changed *)
  mutable hash_hits : int; (* reconstructions satisfied by an existing trace *)
  mutable evicted : int; (* capacity evictions *)
  mutable quarantines : int; (* condemnations recorded *)
  mutable blacklisted : int; (* entries quarantined permanently *)
  mutable pending_fail : int; (* injected installation failures to consume *)
  mutable failed_installs : int; (* injected failures consumed *)
  mutable quarantine_rejects : int; (* installs refused while quarantined *)
  mutable pin_refusals : int;
      (* quarantine attempts refused because the bound trace was pinned *)
  mutable demote_refusals : int;
      (* tier demotions refused because the compiled trace was pinned *)
  mutable cross_installs : int;
      (* hash-cons hits where the cached trace was built by another
         session — a construction this session never had to pay for *)
  mutable cross_entries : int;
      (* dispatch lookups entering a trace built by another session *)
  mutable ledger : Ledger.t option;
      (* decision ledger (engine-owned); installs, evictions and
         quarantines are recorded here, at the site that knows the
         victim-scoring inputs *)
}

let create ?(events = Events.create ()) ?(max_traces = 0) ?(max_blocks = 0)
    ?(eviction_policy = Config.Cache.Lru) ?(heal_max_rebuilds = 3)
    ?(heal_backoff = 512) (layout : Layout.t) =
  if max_traces < 0 then invalid_arg "Trace_cache.create: max_traces < 0";
  if max_blocks < 0 then invalid_arg "Trace_cache.create: max_blocks < 0";
  if heal_max_rebuilds < 1 then
    invalid_arg "Trace_cache.create: heal_max_rebuilds < 1";
  if heal_backoff < 1 then invalid_arg "Trace_cache.create: heal_backoff < 1";
  {
    layout;
    events;
    by_entry = Hashtbl.create 256;
    by_seq = Hashtbl.create 256;
    max_traces;
    max_blocks;
    policy = eviction_policy;
    heal_max_rebuilds;
    heal_backoff;
    quarantine = Hashtbl.create 16;
    pinned = Hashtbl.create 8;
    last_used = Hashtbl.create 256;
    use_count = Hashtbl.create 256;
    stamp = 0;
    clock = 0;
    session = 0;
    live_blocks = 0;
    next_id = 0;
    constructed = 0;
    restored = 0;
    replaced = 0;
    hash_hits = 0;
    evicted = 0;
    quarantines = 0;
    blacklisted = 0;
    pending_fail = 0;
    failed_installs = 0;
    quarantine_rejects = 0;
    pin_refusals = 0;
    demote_refusals = 0;
    cross_installs = 0;
    cross_entries = 0;
    ledger = None;
  }

let set_ledger t l = t.ledger <- Some l

let ledger t = t.ledger

let ledger_record t ?trace_id ?first ?head action =
  match t.ledger with
  | Some l -> Ledger.record l ?trace_id ?first ?head action
  | None -> ()

let layout t = t.layout

let entry_key_int t ~first ~head = (first * t.layout.Layout.n_blocks) + head

let seq_key ~first ~(blocks : Layout.gid array) =
  let buf = Buffer.create (4 * (Array.length blocks + 1)) in
  Buffer.add_string buf (string_of_int first);
  Array.iter
    (fun g ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int g))
    blocks;
  Buffer.contents buf

let set_clock t now = t.clock <- now

(* A shared cache serves several sessions in turn; the [Session] layer
   announces whose dispatches follow so cross-session reuse can be
   attributed.  Solo engines leave this at 0 and pay nothing. *)
let set_session t id = t.session <- id

let session t = t.session

let touch t ekey =
  t.stamp <- t.stamp + 1;
  Hashtbl.replace t.last_used ekey t.stamp;
  let uses =
    match Hashtbl.find_opt t.use_count ekey with Some n -> n | None -> 0
  in
  Hashtbl.replace t.use_count ekey (uses + 1)

(* Execution pins.  The dispatch loop pins a trace for as long as it is
   being followed; eviction ([pick_victim]) and condemnation
   ([quarantine]) must never pull a trace out from under a running
   dispatch — before pinning existed nothing guarded this, and OSR makes
   the window live (a deopt needs the trace it is abandoning intact). *)

let pin t (tr : Trace.t) =
  let id = tr.Trace.id in
  let n = match Hashtbl.find_opt t.pinned id with Some n -> n | None -> 0 in
  Hashtbl.replace t.pinned id (n + 1)

let unpin t (tr : Trace.t) =
  let id = tr.Trace.id in
  match Hashtbl.find_opt t.pinned id with
  | Some n when n > 1 -> Hashtbl.replace t.pinned id (n - 1)
  | Some _ -> Hashtbl.remove t.pinned id
  | None -> () (* tolerate a flush between pin and unpin *)

let is_pinned t (tr : Trace.t) = Hashtbl.mem t.pinned tr.Trace.id

let n_pinned t = Hashtbl.length t.pinned

let n_pin_refusals t = t.pin_refusals

let n_demote_refusals t = t.demote_refusals

(* The compiled tier's view of the live cache.  A pin also protects the
   lowered body: demoting a trace out from under the dispatch loop that
   is following its micro-IR would leave the loop's accounting pointing
   at freed state, so [demote_lowered] refuses exactly like
   [quarantine] does. *)

let trace_uses t (tr : Trace.t) =
  match Hashtbl.find_opt t.use_count
          (entry_key_int t ~first:tr.Trace.first ~head:tr.Trace.blocks.(0))
  with
  | Some n -> n
  | None -> 0

let n_compiled t =
  Hashtbl.fold
    (fun _ tr acc -> if tr.Trace.lowered <> None then acc + 1 else acc)
    t.by_entry 0

let demote_lowered t (tr : Trace.t) =
  if tr.Trace.lowered = None then false
  else if is_pinned t tr then begin
    t.demote_refusals <- t.demote_refusals + 1;
    false
  end
  else begin
    tr.Trace.lowered <- None;
    true
  end

let coldest_compiled t ~(excluding : Trace.t option) : Trace.t option =
  let best = ref None in
  Hashtbl.iter
    (fun _ tr ->
      if
        tr.Trace.lowered <> None
        && (not (is_pinned t tr))
        && not
             (match excluding with Some e -> e == tr | None -> false)
      then
        let uses = trace_uses t tr in
        match !best with
        | Some (_, b) when b <= uses -> ()
        | _ -> best := Some (tr, uses))
    t.by_entry;
  match !best with Some (tr, _) -> Some tr | None -> None

(* Dispatch lookup: is there a trace entered by the transition
   (prev, cur)? *)
let lookup t ~prev ~cur : Trace.t option =
  if prev < 0 then None
  else
    let ekey = entry_key_int t ~first:prev ~head:cur in
    match Hashtbl.find_opt t.by_entry ekey with
    | Some tr ->
        touch t ekey;
        if tr.Trace.owner <> t.session then
          t.cross_entries <- t.cross_entries + 1;
        Some tr
    | None -> None

(* Non-dispatch lookup: same binding, but no LRU touch and no
   cross-session accounting — observers (the OSR promotion glue, tests)
   use this to inspect a binding without heating it. *)
let peek t ~first ~head : Trace.t option =
  if first < 0 then None
  else Hashtbl.find_opt t.by_entry (entry_key_int t ~first ~head)

(* Purge every by_seq binding of this exact trace.  A corrupted trace's
   sequence key is stale (the blocks changed under it), so a key lookup
   cannot be trusted — a physical-equality scan can.  Purging prevents a
   condemned or evicted trace from being resurrected by hash-consing. *)
let purge_seq t (tr : Trace.t) =
  let stale = ref [] in
  Hashtbl.iter (fun k v -> if v == tr then stale := k :: !stale) t.by_seq;
  List.iter (Hashtbl.remove t.by_seq) !stale

(* Unbind one live entry: the displaced trace also leaves the hash-cons
   table, so rebuilding it later constructs (and re-validates) it afresh. *)
let unbind t ekey (tr : Trace.t) =
  Hashtbl.remove t.by_entry ekey;
  Hashtbl.remove t.last_used ekey;
  Hashtbl.remove t.use_count ekey;
  t.live_blocks <- t.live_blocks - Array.length tr.Trace.blocks;
  (* leaving the cache frees the compiled-tier slot too (no Tier_demoted
     event: the eviction/quarantine event already covers the removal) *)
  tr.Trace.lowered <- None;
  purge_seq t tr

let n_live t = Hashtbl.length t.by_entry

let emit_evicted t ~ekey ~(tr : Trace.t) ~reason =
  if Events.enabled t.events then begin
    let n = t.layout.Layout.n_blocks in
    Events.emit t.events
      (Events.Trace_evicted
         {
           trace_id = tr.Trace.id;
           first = ekey / n;
           head = ekey mod n;
           n_live = n_live t;
           reason;
         })
  end

let stamp_of t ekey =
  match Hashtbl.find_opt t.last_used ekey with Some s -> s | None -> min_int

let uses_of t ekey =
  match Hashtbl.find_opt t.use_count ekey with Some n -> n | None -> 0

(* Estimated i-cache bytes this entry pays per use — the footprint/heat
   ratio (shared byte model: [Footprint_model]).  A large rarely-entered
   trace scores high (bad); a hot trace of any size scores low. *)
let footprint_score t ekey (tr : Trace.t) =
  float_of_int (Footprint_model.trace_bytes tr)
  /. float_of_int (1 + uses_of t ekey)

(* Pick the victim the configured policy condemns (never [keep], the
   entry just installed, and never a pinned trace): the smallest LRU
   stamp under [Lru], the worst footprint/heat ratio (ties broken by
   older stamp) under [Footprint_aware].  Returns [None] when nothing is
   evictable. *)
let pick_victim t ~keep =
  let victim = ref None in
  (match t.policy with
  | Config.Cache.Lru ->
      Hashtbl.iter
        (fun ekey tr ->
          if ekey <> keep && not (is_pinned t tr) then
            let s = stamp_of t ekey in
            match !victim with
            | Some (_, _, best) when best <= s -> ()
            | _ -> victim := Some (ekey, tr, s))
        t.by_entry
  | Config.Cache.Footprint_aware ->
      let best_score = ref neg_infinity in
      Hashtbl.iter
        (fun ekey tr ->
          if ekey <> keep && not (is_pinned t tr) then begin
            let score = footprint_score t ekey tr in
            let s = stamp_of t ekey in
            let better =
              score > !best_score
              || score = !best_score
                 &&
                 match !victim with
                 | Some (_, _, best) -> s < best
                 | None -> true
            in
            if better then begin
              best_score := score;
              victim := Some (ekey, tr, s)
            end
          end)
        t.by_entry);
  !victim

(* Evict one live entry chosen by the policy.  [reason] says who asked —
   capacity caps or an injected pressure fault.  Returns false when
   nothing is evictable. *)
let evict_one t ~keep ~reason =
  match pick_victim t ~keep with
  | None -> false
  | Some (ekey, tr, stamp) ->
      (* capture the victim-scoring inputs before unbind clears them *)
      let footprint = Footprint_model.trace_bytes tr in
      let heat = uses_of t ekey in
      unbind t ekey tr;
      t.evicted <- t.evicted + 1;
      emit_evicted t ~ekey ~tr ~reason;
      let n = t.layout.Layout.n_blocks in
      ledger_record t ~trace_id:tr.Trace.id ~first:(ekey / n)
        ~head:(ekey mod n)
        (Ledger.Evict
           {
             reason = Events.evict_reason_to_string reason;
             footprint;
             heat;
             stamp;
           });
      true

let over_capacity t =
  (t.max_traces > 0 && n_live t > t.max_traces)
  || (t.max_blocks > 0 && t.live_blocks > t.max_blocks)

let rec enforce_caps t ~keep =
  if over_capacity t && evict_one t ~keep ~reason:Events.Capacity then
    enforce_caps t ~keep

(* Install a candidate trace.  If an identical trace is already cached we
   keep it (hash-cons hit); otherwise a new trace is constructed and bound
   to its entry transition, displacing any previous binding. *)
let note_replaced t ~first ~head (tr : Trace.t) =
  t.replaced <- t.replaced + 1;
  if Events.enabled t.events then
    Events.emit t.events
      (Events.Trace_replaced { first; head; trace_id = tr.Trace.id })

let bind t ekey (tr : Trace.t) =
  (match Hashtbl.find_opt t.by_entry ekey with
  | Some old when old == tr -> ()
  | Some old ->
      t.live_blocks <-
        t.live_blocks
        - Array.length old.Trace.blocks
        + Array.length tr.Trace.blocks;
      Hashtbl.replace t.by_entry ekey tr
  | None ->
      t.live_blocks <- t.live_blocks + Array.length tr.Trace.blocks;
      Hashtbl.replace t.by_entry ekey tr);
  touch t ekey

let install t ~first ~(blocks : Layout.gid array) ~prob : Trace.t =
  let skey = seq_key ~first ~blocks in
  let ekey = entry_key_int t ~first ~head:blocks.(0) in
  let displaced = ref false in
  let tr =
    match Hashtbl.find_opt t.by_seq skey with
    | Some existing ->
        t.hash_hits <- t.hash_hits + 1;
        if existing.Trace.owner <> t.session then
          t.cross_installs <- t.cross_installs + 1;
        (* make sure it is (still) the trace bound to its entry *)
        (match Hashtbl.find_opt t.by_entry ekey with
        | Some bound when bound == existing -> ()
        | Some _ ->
            displaced := true;
            note_replaced t ~first ~head:blocks.(0) existing
        | None -> ());
        existing
    | None ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let tr = Trace.make ~id ~layout:t.layout ~first ~blocks ~prob in
        tr.Trace.owner <- t.session;
        t.constructed <- t.constructed + 1;
        Hashtbl.replace t.by_seq skey tr;
        (match Hashtbl.find_opt t.by_entry ekey with
        | Some _ ->
            displaced := true;
            note_replaced t ~first ~head:blocks.(0) tr
        | None -> ());
        tr
  in
  bind t ekey tr;
  ledger_record t ~trace_id:tr.Trace.id ~first ~head:blocks.(0)
    (Ledger.Install { replaced = !displaced; n_blocks = Array.length blocks });
  enforce_caps t ~keep:ekey;
  tr

(* Quarantine bookkeeping *)

let is_quarantined t ~first ~head =
  match Hashtbl.find_opt t.quarantine (entry_key_int t ~first ~head) with
  | Some q -> q.until > t.clock
  | None -> false

let quarantine_attempts t ~first ~head =
  match Hashtbl.find_opt t.quarantine (entry_key_int t ~first ~head) with
  | Some q -> q.attempts
  | None -> 0

let quarantine_until t ~first ~head =
  match Hashtbl.find_opt t.quarantine (entry_key_int t ~first ~head) with
  | Some q -> Some q.until
  | None -> None

let n_quarantine_active t =
  Hashtbl.fold (fun _ q acc -> if q.until > t.clock then acc + 1 else acc)
    t.quarantine 0

let quarantine t ~first ~head ~code : Trace.t option =
  let ekey = entry_key_int t ~first ~head in
  match Hashtbl.find_opt t.by_entry ekey with
  | Some tr when is_pinned t tr ->
      (* Refuse wholly: no unbind, no blacklist record — the trace is
         being executed right now.  Under OSR the caller deopts (and
         unpins) first and retries; without OSR a later sweep or
         dispatch validation re-detects the fault once the trace has
         exited.  The refusal is counted, not silently dropped. *)
      t.pin_refusals <- t.pin_refusals + 1;
      None
  | bound ->
  let removed =
    match bound with
    | Some tr ->
        unbind t ekey tr;
        (* not counted in [evicted] (that is capacity accounting) but
           visible in the timeline with its own reason *)
        emit_evicted t ~ekey ~tr ~reason:Events.Quarantine;
        Some tr
    | None -> None
  in
  let q =
    match Hashtbl.find_opt t.quarantine ekey with
    | Some q -> q
    | None ->
        let q = { attempts = 0; until = 0 } in
        Hashtbl.replace t.quarantine ekey q;
        q
  in
  q.attempts <- q.attempts + 1;
  t.quarantines <- t.quarantines + 1;
  if q.attempts > t.heal_max_rebuilds then begin
    if q.until <> max_int then t.blacklisted <- t.blacklisted + 1;
    q.until <- max_int
  end
  else
    (* exponential backoff: backoff * 2^(attempts-1) clock units *)
    q.until <- t.clock + (t.heal_backoff * (1 lsl min (q.attempts - 1) 20));
  if Events.enabled t.events then
    Events.emit t.events
      (Events.Trace_quarantined
         {
           trace_id = (match removed with Some tr -> tr.Trace.id | None -> -1);
           first;
           head;
           code;
           attempts = q.attempts;
           until = q.until;
         });
  ledger_record t
    ~trace_id:(match removed with Some tr -> tr.Trace.id | None -> -1)
    ~first ~head
    (Ledger.Quarantine
       {
         code;
         attempts = q.attempts;
         until = q.until;
         permanent = q.until = max_int;
       });
  removed

let remove t ~first ~head : Trace.t option =
  let ekey = entry_key_int t ~first ~head in
  match Hashtbl.find_opt t.by_entry ekey with
  | None -> None
  | Some tr ->
      unbind t ekey tr;
      Some tr

let inject_install_failure t = t.pending_fail <- t.pending_fail + 1

let try_install t ~first ~(blocks : Layout.gid array) ~prob : Trace.t option =
  if Array.length blocks = 0 then None
  else if is_quarantined t ~first ~head:blocks.(0) then begin
    t.quarantine_rejects <- t.quarantine_rejects + 1;
    None
  end
  else if t.pending_fail > 0 then begin
    t.pending_fail <- t.pending_fail - 1;
    t.failed_installs <- t.failed_installs + 1;
    None
  end
  else Some (install t ~first ~blocks ~prob)

let pressure_evict t ~down_to =
  let down_to = max 0 down_to in
  (* the reason tag records which policy chose the victim, so the
     timeline can distinguish an LRU pressure eviction from a
     footprint-scored one *)
  let reason =
    match t.policy with
    | Config.Cache.Lru -> Events.Pressure
    | Config.Cache.Footprint_aware -> Events.Footprint
  in
  let count = ref 0 in
  let rec go () =
    if n_live t > down_to && evict_one t ~keep:min_int ~reason then begin
      incr count;
      go ()
    end
  in
  go ();
  !count

(* Warm-start snapshots.  A snapshot captures the live cache — entry
   bindings, completion probabilities and per-entry heat — in canonical
   (entry-key) order, so snapshotting, restoring and snapshotting again
   yields the same value bit for bit.  Counters, quarantine records and
   LRU stamps are runtime state, not cache contents, and are not
   captured. *)

type entry_snap = {
  snap_first : Layout.gid;
  snap_blocks : Layout.gid array;
  snap_prob : float;
  snap_heat : int; (* use count, so footprint-aware eviction stays warm *)
}

let snapshot t : entry_snap list =
  let entries = ref [] in
  Hashtbl.iter
    (fun ekey tr ->
      entries :=
        ( ekey,
          {
            snap_first = tr.Trace.first;
            snap_blocks = Array.copy tr.Trace.blocks;
            snap_prob = tr.Trace.prob;
            snap_heat = uses_of t ekey;
          } )
        :: !entries)
    t.by_entry;
  List.sort (fun (a, _) (b, _) -> compare a b) !entries |> List.map snd

let restore ?promoted_below t (snaps : entry_snap list) : int =
  let n = ref 0 in
  List.iter
    (fun snap ->
      if Array.length snap.snap_blocks = 0 then
        invalid_arg "Trace_cache.restore: empty block sequence";
      let first = snap.snap_first and blocks = snap.snap_blocks in
      let skey = seq_key ~first ~blocks in
      let ekey = entry_key_int t ~first ~head:blocks.(0) in
      let tr =
        match Hashtbl.find_opt t.by_seq skey with
        | Some existing -> existing
        | None ->
            let id = t.next_id in
            t.next_id <- id + 1;
            let tr =
              Trace.make ~id ~layout:t.layout ~first ~blocks
                ~prob:snap.snap_prob
            in
            tr.Trace.owner <- t.session;
            (* the cutter never commits below the threshold, so a
               sub-threshold snapshot can only be a promoted loop trace *)
            (match promoted_below with
            | Some threshold when snap.snap_prob < threshold ->
                tr.Trace.promoted <- true
            | _ -> ());
            Hashtbl.replace t.by_seq skey tr;
            tr
      in
      bind t ekey tr;
      (* the snapshot's heat replaces the single use [bind] just stamped *)
      Hashtbl.replace t.use_count ekey snap.snap_heat;
      t.restored <- t.restored + 1;
      incr n;
      enforce_caps t ~keep:ekey)
    snaps;
  !n

let iter t f = Hashtbl.iter (fun _ tr -> f tr) t.by_entry

(* Decode the packed entry key so checkers can compare the binding against
   the trace's own entry transition. *)
let iter_entries t f =
  let n = t.layout.Layout.n_blocks in
  Hashtbl.iter (fun key tr -> f ~first:(key / n) ~head:(key mod n) tr) t.by_entry

(* All traces ever constructed (including displaced ones). *)
let iter_all t f = Hashtbl.iter (fun _ tr -> f tr) t.by_seq

let n_constructed t = t.constructed

let n_restored t = t.restored

let n_replaced t = t.replaced

let eviction_policy t = t.policy

let footprint_bytes t =
  Hashtbl.fold
    (fun _ tr acc -> acc + Footprint_model.trace_bytes tr)
    t.by_entry 0

let live_blocks t = t.live_blocks

let n_evicted t = t.evicted

let n_quarantines t = t.quarantines

let n_blacklisted t = t.blacklisted

let n_failed_installs t = t.failed_installs

let n_quarantine_rejects t = t.quarantine_rejects

let n_cross_installs t = t.cross_installs

let n_cross_entries t = t.cross_entries

let flush t =
  Hashtbl.reset t.by_entry;
  Hashtbl.reset t.by_seq;
  Hashtbl.reset t.last_used;
  Hashtbl.reset t.use_count;
  Hashtbl.reset t.quarantine;
  Hashtbl.reset t.pinned;
  t.live_blocks <- 0
