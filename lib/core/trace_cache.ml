module Layout = Cfg.Layout

(* The trace cache (paper §4.2): a hash table of traces, indexed two ways —
   by entry transition for dispatch, and by full block sequence for
   hash-consing (an identical reconstructed trace is retrieved and relinked
   rather than rebuilt).  Replacing the trace installed at an entry key
   counts as an instability event. *)

type t = {
  layout : Layout.t;
  events : Events.t;
  by_entry : (int, Trace.t) Hashtbl.t; (* key = first * n_blocks + head *)
  by_seq : (string, Trace.t) Hashtbl.t; (* structural key *)
  mutable next_id : int;
  mutable constructed : int; (* traces newly built *)
  mutable replaced : int; (* entry keys whose trace changed *)
  mutable hash_hits : int; (* reconstructions satisfied by an existing trace *)
}

let create ?(events = Events.create ()) (layout : Layout.t) =
  {
    layout;
    events;
    by_entry = Hashtbl.create 256;
    by_seq = Hashtbl.create 256;
    next_id = 0;
    constructed = 0;
    replaced = 0;
    hash_hits = 0;
  }

let entry_key_int t ~first ~head = (first * t.layout.Layout.n_blocks) + head

let seq_key ~first ~(blocks : Layout.gid array) =
  let buf = Buffer.create (4 * (Array.length blocks + 1)) in
  Buffer.add_string buf (string_of_int first);
  Array.iter
    (fun g ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int g))
    blocks;
  Buffer.contents buf

(* Dispatch lookup: is there a trace entered by the transition
   (prev, cur)? *)
let lookup t ~prev ~cur : Trace.t option =
  if prev < 0 then None
  else Hashtbl.find_opt t.by_entry (entry_key_int t ~first:prev ~head:cur)

(* Install a candidate trace.  If an identical trace is already cached we
   keep it (hash-cons hit); otherwise a new trace is constructed and bound
   to its entry transition, displacing any previous binding. *)
let note_replaced t ~first ~head (tr : Trace.t) =
  t.replaced <- t.replaced + 1;
  if Events.enabled t.events then
    Events.emit t.events
      (Events.Trace_replaced { first; head; trace_id = tr.Trace.id })

let install t ~first ~(blocks : Layout.gid array) ~prob : Trace.t =
  let skey = seq_key ~first ~blocks in
  match Hashtbl.find_opt t.by_seq skey with
  | Some existing ->
      t.hash_hits <- t.hash_hits + 1;
      (* make sure it is (still) the trace bound to its entry *)
      let ekey = entry_key_int t ~first ~head:blocks.(0) in
      (match Hashtbl.find_opt t.by_entry ekey with
      | Some bound when bound == existing -> ()
      | Some _ ->
          note_replaced t ~first ~head:blocks.(0) existing;
          Hashtbl.replace t.by_entry ekey existing
      | None -> Hashtbl.replace t.by_entry ekey existing);
      existing
  | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let tr = Trace.make ~id ~layout:t.layout ~first ~blocks ~prob in
      t.constructed <- t.constructed + 1;
      Hashtbl.replace t.by_seq skey tr;
      let ekey = entry_key_int t ~first ~head:blocks.(0) in
      (match Hashtbl.find_opt t.by_entry ekey with
      | Some _ -> note_replaced t ~first ~head:blocks.(0) tr
      | None -> ());
      Hashtbl.replace t.by_entry ekey tr;
      tr

let iter t f = Hashtbl.iter (fun _ tr -> f tr) t.by_entry

(* Decode the packed entry key so checkers can compare the binding against
   the trace's own entry transition. *)
let iter_entries t f =
  let n = t.layout.Layout.n_blocks in
  Hashtbl.iter (fun key tr -> f ~first:(key / n) ~head:(key mod n) tr) t.by_entry

(* All traces ever constructed (including displaced ones). *)
let iter_all t f = Hashtbl.iter (fun _ tr -> f tr) t.by_seq

let n_live t = Hashtbl.length t.by_entry

let n_constructed t = t.constructed

let n_replaced t = t.replaced

let flush t =
  Hashtbl.reset t.by_entry;
  Hashtbl.reset t.by_seq
